"""Property-based laws of the XCQL projections (paper §2/§6 semantics)."""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.dom import serialize
from repro.temporal import XSDateTime

from tests.conftest import NOW_2003_12_15

# Random instants across the credit fixture's active years.
_instants = st.tuples(
    st.integers(1999, 2003), st.integers(1, 12), st.integers(1, 28)
).map(lambda ymd: XSDateTime(*ymd))


def project(engine, begin, end):
    return [
        serialize(e)
        for e in engine.execute(
            f'stream("credit")//account/creditLimit?[{begin}, {end}]',
            now=NOW_2003_12_15,
        )
    ]


class TestIntervalProjectionLaws:
    @given(_instants, _instants)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_nested_projection_is_intersection(self, credit_engine, a, b):
        """e?[w1]?[w2] selects what e?[w1∩w2] selects."""
        lo, hi = (a, b) if a <= b else (b, a)
        mid = XSDateTime.from_epoch_seconds(
            (lo.to_epoch_seconds() + hi.to_epoch_seconds()) / 2
        )
        nested = [
            serialize(e)
            for e in credit_engine.execute(
                f'stream("credit")//account/creditLimit?[{lo}, {hi}]?[{mid}, {hi}]',
                now=NOW_2003_12_15,
            )
        ]
        direct = project(credit_engine, mid, hi)
        assert nested == direct

    @given(_instants)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_point_projection_selects_at_most_one_version(self, credit_engine, t):
        result = credit_engine.execute(
            f'for $a in stream("credit")//account '
            f"return count($a/creditLimit?[{t}])",
            now=NOW_2003_12_15,
        )
        assert all(count <= 1 for count in result)

    @given(_instants, _instants)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_projection_monotone_in_window(self, credit_engine, a, b):
        """A wider window never selects fewer versions."""
        lo, hi = (a, b) if a <= b else (b, a)
        assume(lo < hi)
        narrow = credit_engine.execute(
            f'count(stream("credit")//transaction?[{lo}, {hi}])',
            now=NOW_2003_12_15,
        )[0]
        wide = credit_engine.execute(
            f'count(stream("credit")//transaction?[1998-01-01, 2003-12-14])',
            now=NOW_2003_12_15,
        )[0]
        assert narrow <= wide

    @given(_instants, _instants)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_clipped_lifespans_inside_window(self, credit_engine, a, b):
        lo, hi = (a, b) if a <= b else (b, a)
        for text in project(credit_engine, lo, hi):
            # every reported vtFrom/vtTo lies inside [lo, hi]
            import re

            vt_from = re.search(r'vtFrom="([^"]+)"', text).group(1)
            vt_to = re.search(r'vtTo="([^"]+)"', text).group(1)
            assert lo <= XSDateTime.parse(vt_from) <= hi
            assert lo <= XSDateTime.parse(vt_to) <= hi


class TestVersionProjectionLaws:
    @given(st.integers(1, 4))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_prefix_ranges_nest(self, credit_engine, n):
        """#[1, n] is a prefix of #[1, n+1]."""
        shorter = [
            serialize(e)
            for e in credit_engine.execute(
                f'stream("credit")//account[@id="1234"]/transaction#[1, {n}]',
                now=NOW_2003_12_15,
            )
        ]
        longer = [
            serialize(e)
            for e in credit_engine.execute(
                f'stream("credit")//account[@id="1234"]/transaction#[1, {n + 1}]',
                now=NOW_2003_12_15,
            )
        ]
        assert longer[: len(shorter)] == shorter

    @given(st.integers(1, 6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_single_version_cardinality(self, credit_engine, v):
        counts = credit_engine.execute(
            f'for $a in stream("credit")//account '
            f"return count($a/creditLimit#[{v}])",
            now=NOW_2003_12_15,
        )
        assert all(count in (0, 1) for count in counts)

    def test_full_range_is_identity_selection(self, credit_engine):
        everything = credit_engine.execute(
            'count(stream("credit")//account/creditLimit)', now=NOW_2003_12_15
        )
        ranged = credit_engine.execute(
            'count(stream("credit")//account/creditLimit#[1, 99])',
            now=NOW_2003_12_15,
        )
        assert ranged == everything
