"""Tests for xs:dateTime / xs:duration values (repro.temporal.chrono)."""

import datetime as stdlib_datetime

import pytest
from hypothesis import given, strategies as st

from repro.temporal.chrono import (
    ChronoError,
    XSDateTime,
    XSDuration,
    civil_from_days,
    days_from_civil,
    days_in_month,
    is_leap_year,
)


class TestCalendarMath:
    def test_epoch_is_day_zero(self):
        assert days_from_civil(1970, 1, 1) == 0

    def test_known_day_numbers(self):
        assert days_from_civil(1970, 1, 2) == 1
        assert days_from_civil(1969, 12, 31) == -1
        assert days_from_civil(2000, 3, 1) == 11017

    @given(st.integers(min_value=-200_000, max_value=200_000))
    def test_civil_round_trip(self, day_number):
        year, month, day = civil_from_days(day_number)
        assert days_from_civil(year, month, day) == day_number

    @given(
        st.integers(min_value=1, max_value=9999),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
    )
    def test_matches_python_datetime(self, year, month, day):
        ours = days_from_civil(year, month, day)
        theirs = (stdlib_datetime.date(year, month, day) - stdlib_datetime.date(1970, 1, 1)).days
        assert ours == theirs

    def test_leap_years(self):
        assert is_leap_year(2000)
        assert is_leap_year(2004)
        assert not is_leap_year(1900)
        assert not is_leap_year(2003)

    def test_days_in_month(self):
        assert days_in_month(2004, 2) == 29
        assert days_in_month(2003, 2) == 28
        assert days_in_month(2003, 12) == 31
        assert days_in_month(2003, 4) == 30


class TestDurationParsing:
    @pytest.mark.parametrize(
        "text, months, seconds",
        [
            ("PT1M", 0, 60),
            ("PT1S", 0, 1),
            ("PT1H", 0, 3600),
            ("P1D", 0, 86400),
            ("P1Y", 12, 0),
            ("P2M", 2, 0),
            ("P1Y2M3DT4H5M6S", 14, 3 * 86400 + 4 * 3600 + 5 * 60 + 6),
            ("-PT30S", 0, -30),
            ("PT0.5S", 0, 0.5),
        ],
    )
    def test_parse(self, text, months, seconds):
        duration = XSDuration.parse(text)
        assert duration.months == months
        assert duration.seconds == seconds

    @pytest.mark.parametrize("bad", ["P", "PT", "1D", "P-1D", "PT1X", "", "PxD"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ChronoError):
            XSDuration.parse(bad)

    @pytest.mark.parametrize(
        "text", ["PT1M", "P1D", "P1Y2M3DT4H5M6S", "-PT30S", "P2M", "PT0S"]
    )
    def test_string_round_trip(self, text):
        assert str(XSDuration.parse(text)) == text

    def test_canonical_folding(self):
        # 90 seconds renders as PT1M30S.
        assert str(XSDuration(0, 90)) == "PT1M30S"
        assert str(XSDuration(14, 0)) == "P1Y2M"


class TestDurationArithmetic:
    def test_add_sub_neg(self):
        a = XSDuration.parse("PT1H")
        b = XSDuration.parse("PT30M")
        assert (a + b).seconds == 5400
        assert (a - b).seconds == 1800
        assert (-a).seconds == -3600

    def test_scale(self):
        assert (XSDuration.parse("PT10S") * 6).seconds == 60
        assert (XSDuration.parse("PT1M") / 2).seconds == 30
        assert (2 * XSDuration.parse("PT1M")).seconds == 120

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            XSDuration.parse("PT1M") / 0

    def test_ordering_day_time(self):
        assert XSDuration.parse("PT1M") < XSDuration.parse("PT2M")
        assert XSDuration.parse("P1D") > XSDuration.parse("PT23H")

    def test_ordering_year_month(self):
        assert XSDuration.parse("P11M") < XSDuration.parse("P1Y")

    def test_mixed_comparison_rejected(self):
        with pytest.raises(ChronoError):
            XSDuration.parse("P1M") < XSDuration.parse("P30D")

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_addition_commutes(self, s1, s2):
        a, b = XSDuration(0, s1), XSDuration(0, s2)
        assert a + b == b + a

    def test_hashable(self):
        assert len({XSDuration(0, 60), XSDuration.parse("PT1M")}) == 1


class TestDateTimeParsing:
    def test_paper_format(self):
        value = XSDateTime.parse("2003-10-23T12:23:34")
        assert (value.year, value.month, value.day) == (2003, 10, 23)
        assert (value.hour, value.minute, value.second) == (12, 23, 34.0)

    def test_date_only_means_midnight(self):
        value = XSDateTime.parse("2003-11-01")
        assert (value.hour, value.minute, value.second) == (0, 0, 0.0)

    def test_fractional_seconds(self):
        assert XSDateTime.parse("2003-01-01T00:00:00.250").second == 0.25

    def test_utc_designator(self):
        assert XSDateTime.parse("2003-01-01T12:00:00Z") == XSDateTime.parse(
            "2003-01-01T12:00:00"
        )

    def test_timezone_offset_normalized(self):
        east = XSDateTime.parse("2003-01-01T12:00:00+02:00")
        assert east == XSDateTime.parse("2003-01-01T10:00:00")
        west = XSDateTime.parse("2003-01-01T12:00:00-05:30")
        assert west == XSDateTime.parse("2003-01-01T17:30:00")

    @pytest.mark.parametrize(
        "bad",
        ["2003-13-01", "2003-02-30", "2003-00-10", "not-a-date", "2003-1-1", "2003-01-01T25:00:00"],
    )
    def test_rejects(self, bad):
        with pytest.raises(ChronoError):
            XSDateTime.parse(bad)

    def test_string_round_trip(self):
        text = "2003-10-23T12:23:34"
        assert str(XSDateTime.parse(text)) == text

    @given(st.floats(min_value=-1e10, max_value=1e10, allow_nan=False))
    def test_epoch_round_trip(self, seconds):
        seconds = round(seconds)  # whole seconds survive float exactly
        value = XSDateTime.from_epoch_seconds(seconds)
        assert value.to_epoch_seconds() == seconds


class TestDateTimeArithmetic:
    def test_add_day_time(self):
        base = XSDateTime.parse("2003-10-23T12:23:34")
        assert str(base + XSDuration.parse("PT1M")) == "2003-10-23T12:24:34"
        assert str(base - XSDuration.parse("PT1H")) == "2003-10-23T11:23:34"

    def test_add_months_clamps_day(self):
        jan31 = XSDateTime.parse("2003-01-31")
        assert str(jan31 + XSDuration.parse("P1M")) == "2003-02-28T00:00:00"
        leap = XSDateTime.parse("2004-01-31")
        assert str(leap + XSDuration.parse("P1M")) == "2004-02-29T00:00:00"

    def test_add_year_crosses(self):
        assert str(
            XSDateTime.parse("2003-12-31T23:59:59") + XSDuration.parse("PT1S")
        ) == "2004-01-01T00:00:00"

    def test_datetime_difference(self):
        a = XSDateTime.parse("2003-10-23T13:00:00")
        b = XSDateTime.parse("2003-10-23T12:00:00")
        assert (a - b) == XSDuration.parse("PT1H")

    @given(st.integers(-10**8, 10**8))
    def test_add_then_subtract_is_identity(self, seconds):
        base = XSDateTime.parse("2000-06-15T12:00:00")
        delta = XSDuration(0, seconds)
        assert (base + delta) - delta == base

    def test_ordering(self):
        early = XSDateTime.parse("2003-01-01T00:00:00")
        late = XSDateTime.parse("2003-01-01T00:00:01")
        assert early < late
        assert late >= early
        assert early != late

    def test_hashable(self):
        assert len({XSDateTime.parse("2003-01-01"), XSDateTime.parse("2003-01-01")}) == 1
