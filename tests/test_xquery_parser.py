"""Tests for the XQuery/XCQL lexer and parser."""

import pytest

from repro.xquery import parse, parse_expression, parse_xcql, to_source
from repro.xquery.errors import XQuerySyntaxError
from repro.xquery.lexer import EOF, Lexer
from repro.xquery import xast


def lex_all(source: str):
    lexer = Lexer(source)
    tokens = []
    while True:
        token = lexer.next_token()
        if token.kind == EOF:
            return tokens
        tokens.append(token)


class TestLexer:
    def test_names_numbers_strings(self):
        kinds = [t.kind for t in lex_all('count 42 3.14 1e3 "hi"')]
        assert kinds == ["NAME", "INTEGER", "DECIMAL", "DOUBLE", "STRING"]

    def test_prefixed_name(self):
        tokens = lex_all("xs:dateTime")
        assert [t.value for t in tokens] == ["xs:dateTime"]

    def test_assign_not_eaten_by_name(self):
        values = [t.value for t in lex_all("x := 1")]
        assert values == ["x", ":=", "1"]

    def test_projection_symbols(self):
        values = [t.value for t in lex_all("e?[1] f#[2]")]
        assert "?[" in values and "#[" in values

    def test_string_escapes(self):
        tokens = lex_all('"say ""hi"" &amp; bye"')
        assert tokens[0].value == 'say "hi" & bye'

    def test_nested_comments_skipped(self):
        values = [t.value for t in lex_all("1 (: outer (: inner :) :) 2")]
        assert values == ["1", "2"]

    def test_unterminated_comment(self):
        with pytest.raises(XQuerySyntaxError):
            lex_all("1 (: open")

    def test_unterminated_string(self):
        with pytest.raises(XQuerySyntaxError):
            lex_all('"open')

    def test_position_tracking(self):
        lexer = Lexer("a\n  b")
        lexer.next_token()
        token = lexer.next_token()
        assert (token.line, token.column) == (2, 3)


class TestExpressionParsing:
    def test_precedence(self):
        tree = parse_expression("1 + 2 * 3")
        assert isinstance(tree, xast.BinOp) and tree.op == "+"
        assert isinstance(tree.right, xast.BinOp) and tree.right.op == "*"

    def test_comparison_lower_than_arith(self):
        tree = parse_expression("1 + 1 = 2")
        assert tree.op == "="

    def test_and_or(self):
        tree = parse_expression("1 = 1 or 2 = 2 and 3 = 3")
        assert tree.op == "or"
        assert tree.right.op == "and"

    def test_range(self):
        tree = parse_expression("1 to 5")
        assert tree.op == "to"

    def test_sequence(self):
        tree = parse_expression("(1, 2, 3)")
        assert isinstance(tree, xast.SequenceExpr)
        assert len(tree.items) == 3

    def test_empty_sequence(self):
        tree = parse_expression("()")
        assert isinstance(tree, xast.SequenceExpr) and tree.items == []

    def test_if(self):
        tree = parse_expression('if (1 = 1) then "a" else "b"')
        assert isinstance(tree, xast.IfExpr)

    def test_quantified(self):
        tree = parse_expression("some $x in (1,2) satisfies $x = 2")
        assert isinstance(tree, xast.Quantified) and tree.kind == "some"

    def test_unary_minus(self):
        tree = parse_expression("-1")
        assert isinstance(tree, xast.UnaryOp)

    def test_cast(self):
        tree = parse_expression('"5" cast as xs:integer')
        assert isinstance(tree, xast.CastExpr)

    def test_value_comparison(self):
        tree = parse_expression("$a eq $b")
        assert tree.op == "eq"


class TestPathParsing:
    def test_relative_path(self):
        tree = parse_expression("a/b/c")
        assert isinstance(tree, xast.PathExpr)
        assert tree.base is None
        assert [s.test for s in tree.steps] == ["a", "b", "c"]

    def test_descendant(self):
        tree = parse_expression("$d//item")
        assert tree.steps[0].axis == "descendant-or-self"

    def test_attribute_step(self):
        tree = parse_expression("$a/@id")
        assert tree.steps[0].axis == "attribute"

    def test_wildcards(self):
        tree = parse_expression("$a/*/@*")
        assert tree.steps[0].test == "*"
        assert tree.steps[1].axis == "attribute"
        assert tree.steps[1].test == "*"

    def test_kind_tests(self):
        tree = parse_expression("$a/text()")
        assert tree.steps[0].test == "text()"

    def test_predicates_attach_to_step(self):
        tree = parse_expression('$a/b[c = "1"][2]')
        assert len(tree.steps[0].predicates) == 2

    def test_predicate_on_primary_is_filter(self):
        tree = parse_expression("$a[1]")
        assert isinstance(tree, xast.Filter)

    def test_context_and_parent(self):
        tree = parse_expression("./..")
        assert tree.steps[0].axis == "self"
        assert tree.steps[1].axis == "parent"

    def test_function_call_base(self):
        tree = parse_expression('doc("x")/a')
        assert isinstance(tree.base, xast.FunctionCall)

    def test_union(self):
        tree = parse_expression("$a/b | $a/c")
        assert tree.op == "|"


class TestFLWORParsing:
    def test_clause_shapes(self):
        module = parse(
            'for $x at $i in (1,2) let $y := $x + 1 where $y > 1 '
            "order by $y descending return $y"
        )
        flwor = module.body
        kinds = [type(c).__name__ for c in flwor.clauses]
        assert kinds == ["ForClause", "LetClause", "WhereClause", "OrderByClause"]
        assert flwor.clauses[0].position_var == "i"
        assert flwor.clauses[3].specs[0].descending

    def test_multiple_for_bindings_with_comma(self):
        flwor = parse_expression("for $a in (1), $b in (2) return $a + $b")
        assert len(flwor.clauses) == 2

    def test_paper_style_bindings_without_comma(self):
        # The paper writes multi-variable for clauses without commas.
        flwor = parse_expression(
            'for $v in a\n $r in b\n $t in c\n return $v'
        )
        assert len(flwor.clauses) == 3

    def test_function_definition(self):
        module = parse(
            "define function double($x as xs:integer) as xs:integer { $x * 2 } double(2)"
        )
        assert len(module.functions) == 1
        assert module.functions[0].params[0].type_name == "xs:integer"

    def test_declare_function_synonym(self):
        module = parse("declare function f() as element()* { () } f()")
        assert module.functions[0].return_type == "element()*"


class TestConstructorParsing:
    def test_direct_element(self):
        tree = parse_expression('<a x="1">text</a>')
        assert isinstance(tree, xast.DirectElement)
        assert tree.attributes[0].parts == ["1"]
        assert tree.content == ["text"]

    def test_enclosed_expressions(self):
        tree = parse_expression('<a id="{$x}">{ $y }</a>')
        assert isinstance(tree.attributes[0].parts[0], xast.VarRef)
        assert isinstance(tree.content[0], xast.VarRef)

    def test_unquoted_brace_attribute(self):
        # The paper writes <account id={$a/@id}> without quotes.
        tree = parse_expression("<account id={$a/@id}>{ $a }</account>")
        assert isinstance(tree.attributes[0].parts[0], xast.PathExpr)

    def test_nested_elements(self):
        tree = parse_expression("<a><b>{1}</b><c/></a>")
        assert isinstance(tree.content[0], xast.DirectElement)
        assert isinstance(tree.content[1], xast.DirectElement)

    def test_brace_escapes(self):
        tree = parse_expression("<a>{{literal}}</a>")
        assert tree.content == ["{literal}"]

    def test_boundary_whitespace_stripped(self):
        tree = parse_expression("<a>\n  <b/>\n</a>")
        assert all(not isinstance(part, str) for part in tree.content)

    def test_computed_constructors(self):
        element = parse_expression("element {name($e)} { $e/@* }")
        assert isinstance(element, xast.ComputedElement)
        attribute = parse_expression("attribute id { $a }")
        assert isinstance(attribute, xast.ComputedAttribute)
        text = parse_expression("text { 1 }")
        assert isinstance(text, xast.ComputedText)

    def test_less_than_still_works(self):
        tree = parse_expression("$a < $b")
        assert tree.op == "<"


class TestXCQLParsing:
    def test_interval_projection(self):
        tree = parse_expression("$a/transaction?[2003-11-01,2003-12-01]", xcql=True)
        assert isinstance(tree, xast.IntervalProjection)
        assert isinstance(tree.begin, xast.DateTimeLiteral)

    def test_point_projection_expands(self):
        tree = parse_expression("$a/creditLimit?[now]", xcql=True)
        assert isinstance(tree.begin, xast.NowConstant)
        assert isinstance(tree.end, xast.NowConstant)

    def test_spaced_projection(self):
        tree = parse_expression("$a ? [now]", xcql=True)
        assert isinstance(tree, xast.IntervalProjection)

    def test_now_minus_duration(self):
        tree = parse_expression("$a?[now-PT1H, now]", xcql=True)
        assert isinstance(tree.begin, xast.BinOp)
        assert isinstance(tree.begin.right, xast.DurationLiteral)

    def test_duration_literals(self):
        tree = parse_expression("vtFrom($s) + PT1M", xcql=True)
        assert isinstance(tree.right, xast.DurationLiteral)

    def test_version_projection(self):
        tree = parse_expression("$t#[1, 10]", xcql=True)
        assert isinstance(tree, xast.VersionProjection)

    def test_version_last(self):
        tree = parse_expression("$t#[last]", xcql=True)
        assert isinstance(tree.begin, xast.FunctionCall)
        assert tree.begin.name == "last"

    def test_version_last_minus(self):
        tree = parse_expression("$t#[last - 1, last]", xcql=True)
        assert tree.begin.op == "-"

    def test_interval_comparison(self):
        tree = parse_expression("$a before $b", xcql=True)
        assert tree.op == "before"

    def test_projection_then_steps(self):
        tree = parse_expression("$a/transaction?[now]/amount", xcql=True)
        assert isinstance(tree, xast.PathExpr)
        assert isinstance(tree.base, xast.IntervalProjection)

    def test_xcql_disabled_by_default(self):
        with pytest.raises(XQuerySyntaxError):
            parse_expression("$a?[now]")

    def test_start_constant(self):
        tree = parse_expression("$a?[start, now]", xcql=True)
        assert isinstance(tree.begin, xast.StartConstant)

    def test_stream_accessor_is_plain_call(self):
        module = parse_xcql('stream("credit")//account')
        assert isinstance(module.body.base, xast.FunctionCall)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "for $x in",
            "1 +",
            "(1, 2",
            "<a>",
            "<a></b>",
            "if (1) then 2",
            "$",
            "define function f { 1 } 2",
            "1 2",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(XQuerySyntaxError):
            parse(bad)


ROUND_TRIP_QUERIES = [
    "1 + 2 * 3",
    'for $x in (1, 2) where $x > 1 return $x',
    "some $x in (1, 2) satisfies $x = 2",
    '$a/b[c = "1"]/@id',
    'if ($x) then "a" else "b"',
    "count($a) + sum($b)",
    '<a x="1">{ $y }</a>',
    "element foo { $x }",
    "$a/transaction?[now, now]/amount",
    "$t#[1, 10]",
]


class TestSourceRoundTrip:
    @pytest.mark.parametrize("query", ROUND_TRIP_QUERIES)
    def test_to_source_reparses_equal(self, query):
        first = parse(query, xcql=True)
        rendered = to_source(first)
        second = parse(rendered, xcql=True)
        assert to_source(second) == rendered
