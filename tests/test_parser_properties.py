"""Property-based tests for the XQuery/XCQL and XML parsers.

Random ASTs are rendered with ``to_source`` and re-parsed: the second
render must be identical (render∘parse is a projection).  Random evaluable
expressions additionally round-trip through evaluation with equal results.
Random XML fed to the incremental :class:`EventParser` at arbitrary chunk
boundaries must produce the same events, the same DOM, and the same errors
as a whole-string parse.
"""

from hypothesis import given, settings, strategies as st

from repro.dom.parser import EventParser, XMLParseError, build_fragment, parse_fragment
from repro.dom.serializer import serialize
from repro.xquery import evaluate, parse, to_source
from repro.xquery import xast

# ---------------------------------------------------------------------------
# Random evaluable arithmetic/logic expression sources
# ---------------------------------------------------------------------------

_numbers = st.integers(min_value=0, max_value=999)


@st.composite
def arithmetic_sources(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(_numbers))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arithmetic_sources(depth=depth + 1))
    right = draw(arithmetic_sources(depth=depth + 1))
    if draw(st.booleans()):
        return f"({left} {op} {right})"
    return f"{left} {op} {right}"


@st.composite
def boolean_sources(draw):
    comparison = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    left = draw(arithmetic_sources())
    right = draw(arithmetic_sources())
    expr = f"{left} {comparison} {right}"
    if draw(st.booleans()):
        other = f"{draw(arithmetic_sources())} = {draw(arithmetic_sources())}"
        connective = draw(st.sampled_from(["and", "or"]))
        expr = f"{expr} {connective} {other}"
    return expr


class TestEvaluableRoundTrip:
    @given(arithmetic_sources())
    @settings(max_examples=150, deadline=None)
    def test_arithmetic_render_parse_fixpoint(self, source):
        module = parse(source)
        rendered = to_source(module)
        again = to_source(parse(rendered))
        assert again == rendered

    @given(arithmetic_sources())
    @settings(max_examples=150, deadline=None)
    def test_arithmetic_value_preserved(self, source):
        direct = evaluate(source)
        round_tripped = evaluate(to_source(parse(source)))
        assert round_tripped == direct

    @given(boolean_sources())
    @settings(max_examples=100, deadline=None)
    def test_boolean_value_preserved(self, source):
        assert evaluate(to_source(parse(source))) == evaluate(source)


# ---------------------------------------------------------------------------
# Random ASTs (paths, FLWOR, constructors) — render/parse fixpoint
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "item", "price", "x1"])
_vars = st.sampled_from(["v", "w", "acc"])


@st.composite
def path_exprs(draw):
    base = xast.VarRef(draw(_vars))
    steps = []
    for _ in range(draw(st.integers(1, 3))):
        axis = draw(st.sampled_from(["child", "descendant-or-self", "attribute"]))
        steps.append(xast.Step(axis, draw(_names)))
    return xast.PathExpr(base, steps)


@st.composite
def expressions(draw, depth=0):
    if depth >= 2:
        return draw(
            st.one_of(
                st.builds(xast.Literal, _numbers),
                st.builds(xast.VarRef, _vars),
                path_exprs(),
            )
        )
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return xast.BinOp(
            draw(st.sampled_from(["+", "*", "=", "<"])),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    if kind == 1:
        return xast.IfExpr(
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    if kind == 2:
        return xast.FLWOR(
            [xast.ForClause(draw(_vars), draw(expressions(depth=depth + 1)))],
            draw(expressions(depth=depth + 1)),
        )
    if kind == 3:
        return xast.FunctionCall(
            draw(st.sampled_from(["count", "sum", "f"])),
            [draw(expressions(depth=depth + 1))],
        )
    if kind == 4:
        return xast.IntervalProjection(
            draw(path_exprs()), xast.NowConstant(), xast.NowConstant()
        )
    return draw(path_exprs())


class TestASTRoundTrip:
    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_render_parse_fixpoint(self, tree):
        rendered = to_source(xast.Module([], tree))
        reparsed = parse(rendered, xcql=True)
        assert to_source(reparsed) == rendered


# ---------------------------------------------------------------------------
# EventParser: chunk boundaries never change events, DOMs, or errors
# ---------------------------------------------------------------------------

_xml_names = st.sampled_from(["a", "b", "item", "ns:tag", "x-1", "_u"])
_xml_texts = st.lists(
    st.sampled_from(["x", "y z", "&amp;", "&lt;", "&#65;", "&#x41;", "\n", "é", "  "]),
    max_size=4,
).map("".join)
_xml_attr_values = st.sampled_from(["1", "a b", "&amp;", "&#x41;", "", "q'q"])
_xml_misc = st.sampled_from(
    ["<!-- a comment -->", "<![CDATA[ raw < & > ]]>", "<?pi data?>", "<?pi?>"]
)


@st.composite
def xml_elements(draw, depth=0):
    name = draw(_xml_names)
    attrs = draw(
        st.lists(
            st.tuples(_xml_names, _xml_attr_values),
            max_size=2,
            unique_by=lambda pair: pair[0],
        )
    )
    rendered_attrs = "".join(f' {key}="{value}"' for key, value in attrs)
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return f"<{name}{rendered_attrs}/>"
        return f"<{name}{rendered_attrs}>{draw(_xml_texts)}</{name}>"
    children = draw(
        st.lists(
            st.one_of(xml_elements(depth=depth + 1), _xml_texts, _xml_misc),
            min_size=1,
            max_size=3,
        )
    )
    return f"<{name}{rendered_attrs}>" + "".join(children) + f"</{name}>"


@st.composite
def chunk_cuts(draw, source):
    cuts = sorted(set(draw(st.lists(st.integers(0, len(source)), max_size=8))))
    chunks = []
    previous = 0
    for cut in cuts:
        chunks.append(source[previous:cut])
        previous = cut
    chunks.append(source[previous:])
    return chunks


# Near-XML junk: exercises every error path (stray "<", bad names, unclosed
# constructs, mismatched tags) as well as some accidentally well-formed input.
_xml_junk = st.text(alphabet="<>/ab&;=\"' \n!?-[]CDAT", max_size=40)


def _parse_outcome(chunks, keep_whitespace):
    """Events, or the error identity — whatever the chunked parse produces."""
    parser = EventParser(fragment=True, keep_whitespace=keep_whitespace)
    events = []
    try:
        for chunk in chunks:
            events.extend(parser.feed(chunk))
        events.extend(parser.close())
    except XMLParseError as exc:
        return ("error", str(exc), exc.line, exc.column)
    return ("ok", events)


class TestEventParserChunking:
    @given(st.data(), xml_elements(), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_chunked_events_match_whole(self, data, source, keep_whitespace):
        chunks = data.draw(chunk_cuts(source))
        whole = _parse_outcome([source], keep_whitespace)
        assert whole[0] == "ok"
        assert _parse_outcome(chunks, keep_whitespace) == whole

    @given(st.data(), xml_elements())
    @settings(max_examples=100, deadline=None)
    def test_chunked_dom_matches_whole(self, data, source):
        chunks = data.draw(chunk_cuts(source))
        parser = EventParser(fragment=True)
        events = []
        for chunk in chunks:
            events.extend(parser.feed(chunk))
        events.extend(parser.close())
        chunked_dom = "".join(serialize(node) for node in build_fragment(events))
        whole_dom = "".join(serialize(node) for node in parse_fragment(source))
        assert chunked_dom == whole_dom

    @given(st.data(), _xml_junk, st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_chunked_errors_match_whole(self, data, source, keep_whitespace):
        chunks = data.draw(chunk_cuts(source))
        assert _parse_outcome(chunks, keep_whitespace) == _parse_outcome(
            [source], keep_whitespace
        )
