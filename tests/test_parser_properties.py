"""Property-based tests for the XQuery/XCQL parser.

Random ASTs are rendered with ``to_source`` and re-parsed: the second
render must be identical (render∘parse is a projection).  Random evaluable
expressions additionally round-trip through evaluation with equal results.
"""

from hypothesis import given, settings, strategies as st

from repro.xquery import evaluate, parse, to_source
from repro.xquery import xast

# ---------------------------------------------------------------------------
# Random evaluable arithmetic/logic expression sources
# ---------------------------------------------------------------------------

_numbers = st.integers(min_value=0, max_value=999)


@st.composite
def arithmetic_sources(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(_numbers))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arithmetic_sources(depth=depth + 1))
    right = draw(arithmetic_sources(depth=depth + 1))
    if draw(st.booleans()):
        return f"({left} {op} {right})"
    return f"{left} {op} {right}"


@st.composite
def boolean_sources(draw):
    comparison = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    left = draw(arithmetic_sources())
    right = draw(arithmetic_sources())
    expr = f"{left} {comparison} {right}"
    if draw(st.booleans()):
        other = f"{draw(arithmetic_sources())} = {draw(arithmetic_sources())}"
        connective = draw(st.sampled_from(["and", "or"]))
        expr = f"{expr} {connective} {other}"
    return expr


class TestEvaluableRoundTrip:
    @given(arithmetic_sources())
    @settings(max_examples=150, deadline=None)
    def test_arithmetic_render_parse_fixpoint(self, source):
        module = parse(source)
        rendered = to_source(module)
        again = to_source(parse(rendered))
        assert again == rendered

    @given(arithmetic_sources())
    @settings(max_examples=150, deadline=None)
    def test_arithmetic_value_preserved(self, source):
        direct = evaluate(source)
        round_tripped = evaluate(to_source(parse(source)))
        assert round_tripped == direct

    @given(boolean_sources())
    @settings(max_examples=100, deadline=None)
    def test_boolean_value_preserved(self, source):
        assert evaluate(to_source(parse(source))) == evaluate(source)


# ---------------------------------------------------------------------------
# Random ASTs (paths, FLWOR, constructors) — render/parse fixpoint
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "item", "price", "x1"])
_vars = st.sampled_from(["v", "w", "acc"])


@st.composite
def path_exprs(draw):
    base = xast.VarRef(draw(_vars))
    steps = []
    for _ in range(draw(st.integers(1, 3))):
        axis = draw(st.sampled_from(["child", "descendant-or-self", "attribute"]))
        steps.append(xast.Step(axis, draw(_names)))
    return xast.PathExpr(base, steps)


@st.composite
def expressions(draw, depth=0):
    if depth >= 2:
        return draw(
            st.one_of(
                st.builds(xast.Literal, _numbers),
                st.builds(xast.VarRef, _vars),
                path_exprs(),
            )
        )
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return xast.BinOp(
            draw(st.sampled_from(["+", "*", "=", "<"])),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    if kind == 1:
        return xast.IfExpr(
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    if kind == 2:
        return xast.FLWOR(
            [xast.ForClause(draw(_vars), draw(expressions(depth=depth + 1)))],
            draw(expressions(depth=depth + 1)),
        )
    if kind == 3:
        return xast.FunctionCall(
            draw(st.sampled_from(["count", "sum", "f"])),
            [draw(expressions(depth=depth + 1))],
        )
    if kind == 4:
        return xast.IntervalProjection(
            draw(path_exprs()), xast.NowConstant(), xast.NowConstant()
        )
    return draw(path_exprs())


class TestASTRoundTrip:
    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_render_parse_fixpoint(self, tree):
        rendered = to_source(xast.Module([], tree))
        reparsed = parse(rendered, xcql=True)
        assert to_source(reparsed) == rendered
