"""Multi-document streams (paper §1).

"A server may choose to disseminate XML fragments from multiple documents
in the same stream."  In the Hole-Filler model this is schema design: the
stream root is a container whose fragmented children are whole documents;
new documents join via ``insert_child`` on the root fragment.
"""

import pytest

from repro import Channel, SimulatedClock, Strategy, StreamClient, StreamServer, TagStructure
from repro.dom import parse_document, serialize
from repro.fragments import temporalize


STRUCTURE = TagStructure.build(
    {
        "name": "library",
        "type": "snapshot",
        "children": [
            {
                "name": "document",
                "type": "temporal",
                "children": [
                    {"name": "title", "type": "snapshot"},
                    {
                        "name": "revision",
                        "type": "event",
                        "children": [{"name": "author", "type": "snapshot"}],
                    },
                ],
            }
        ],
    }
)


@pytest.fixture()
def rig():
    clock = SimulatedClock("2004-01-01T00:00:00")
    channel = Channel()
    client = StreamClient(clock)
    client.tune_in(channel)
    server = StreamServer("library", STRUCTURE, channel, clock)
    server.announce()
    server.publish_document(
        parse_document(
            "<library><document id='d1'><title>First</title></document></library>"
        )
    )
    return clock, server, client


class TestMultiDocumentStream:
    def test_second_document_joins_stream(self, rig):
        clock, server, client = rig
        clock.advance("P1D")
        second = parse_document(
            "<document id='d2'><title>Second</title></document>"
        ).document_element
        server.insert_child(0, second)
        titles = client.engine.execute(
            'for $d in stream("library")//document order by $d/title '
            "return $d/title/text()",
            now=clock.now(),
        )
        assert [t.text for t in titles] == ["First", "Second"]

    def test_documents_update_independently(self, rig):
        clock, server, client = rig
        clock.advance("P1D")
        second = parse_document(
            "<document id='d2'><title>Second</title></document>"
        ).document_element
        inserted = server.insert_child(0, second)
        clock.advance("P1D")
        revision = parse_document(
            "<revision><author>bob</author></revision>"
        ).document_element
        server.emit_event(inserted.filler_id, revision)
        # Adding the event hole versioned d2; all its versions are in the
        # view, so ask for the *current* state with ?[now].
        counts = client.engine.execute(
            'for $d in stream("library")//document?[now] order by $d/title '
            "return count($d/revision)",
            now=clock.now(),
        )
        assert counts == [0, 1]
        history = client.engine.execute(
            'count(stream("library")//document)', now=clock.now()
        )
        assert history == [3]  # d1 + two versions of d2

    def test_document_removal_hides_subtree(self, rig):
        """Paper §1: 'When a fragment is deleted all its children fragments
        become inaccessible' — the root is static, so removing the hole
        removes the document from the view."""
        clock, server, client = rig
        clock.advance("P1D")
        second = parse_document(
            "<document id='d2'><title>Second</title></document>"
        ).document_element
        inserted = server.insert_child(0, second)
        assert (
            client.engine.execute(
                'count(stream("library")//document)', now=clock.now()
            )
            == [2]
        )
        clock.advance("P1D")
        server.delete_child(0, inserted.filler_id)
        assert (
            client.engine.execute(
                'count(stream("library")//document)', now=clock.now()
            )
            == [1]
        )
        view = temporalize(client.store_of("library"))
        assert "Second" not in serialize(view)

    def test_strategies_agree_on_multidoc(self, rig):
        clock, server, client = rig
        second = parse_document(
            "<document id='d2'><title>Second</title></document>"
        ).document_element
        server.insert_child(0, second)
        query = 'for $d in stream("library")//document order by $d/title return $d/title/text()'
        results = []
        for strategy in (Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ):
            out = client.engine.execute(query, strategy=strategy, now=clock.now())
            results.append([t.text for t in out])
        assert results[0] == results[1] == results[2]
