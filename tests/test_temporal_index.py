"""Differential tests for the temporal endpoint index (PR 2).

The index is a pure *narrowing* structure: every candidate it yields still
passes through the exact scan predicate, so the indexed fast paths must be
byte-identical to the scan paths under every strategy and backend.  These
tests pit three executions of each query against each other:

- the indexed engine's compiled backend (endpoint index + merge joins),
- a compiled engine with ``use_temporal_index=False, merge_joins=False``
  (the scan-only closure plans),
- the interpreted backend (the AST-walking differential reference).

Also covered: the endpoint-index store API itself, batched ``extend``
invalidation, ``prune_before`` consistency, merge-join lowering
recognition, and property tests over random arrival orders and windows.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FragmentStore, Strategy, TagStructure, XCQLEngine
from repro.dom import parse_document, serialize
from repro.fragments.model import Filler
from repro.temporal import XSDateTime
from repro.xquery.errors import XQueryTypeError

SENSOR_STRUCTURE = TagStructure.from_xml(
    """
    <stream:structure>
      <tag type="snapshot" id="1" name="log">
        <tag type="temporal" id="2" name="reading"/>
        <tag type="event" id="3" name="alarm"/>
      </tag>
    </stream:structure>
    """
)

NOW = XSDateTime(2001, 1, 1)


def t(month: int, day: int, hour: int = 0) -> XSDateTime:
    return XSDateTime(2000, month, day, hour)


def frag(text: str):
    return parse_document(text).document_element


def sensor_fillers() -> list:
    """A deterministic multi-fragment temporal workload.

    Three reading fragments (two multi-version, one single-version — the
    single-version edge case) plus one event fragment, all reachable from
    a snapshot root through holes.
    """
    fillers = [
        Filler(
            0,
            1,
            t(1, 1),
            frag(
                '<log><hole id="1" tsid="2"/><hole id="2" tsid="2"/>'
                '<hole id="4" tsid="2"/><hole id="3" tsid="3"/></log>'
            ),
        )
    ]
    for i in range(8):  # reading fragment A: monthly versions
        fillers.append(Filler(1, 2, t(1 + i, 3), frag(f'<reading s="a" v="{i}"/>')))
    for i in range(5):  # reading fragment B: different cadence
        fillers.append(Filler(2, 2, t(1 + i, 20), frag(f'<reading s="b" v="{i}"/>')))
    fillers.append(Filler(4, 2, t(4, 1), frag('<reading s="c" v="0"/>')))
    for i in range(6):  # alarms: instantaneous events
        fillers.append(Filler(3, 3, t(2 + i, 10), frag(f'<alarm n="{i}"/>')))
    return fillers


def make_engine(fillers=None, **engine_kwargs) -> XCQLEngine:
    engine = XCQLEngine(default_now=NOW, **engine_kwargs)
    engine.register_stream("sensor", SENSOR_STRUCTURE)
    engine.feed("sensor", list(fillers) if fillers is not None else sensor_fillers())
    return engine


def normalized(result) -> list[str]:
    return [
        serialize(item) if hasattr(item, "string_value") else str(item)
        for item in result
    ]


# Engines shared across tests: executions never mutate the stores.
INDEXED = make_engine()
SCAN = make_engine(use_temporal_index=False, merge_joins=False)


def assert_identical(query: str, strategy: Strategy = Strategy.QAC) -> list[str]:
    indexed = normalized(INDEXED.execute(query, strategy=strategy))
    scan = normalized(SCAN.execute(query, strategy=strategy))
    interpreted = normalized(
        INDEXED.execute(query, strategy=strategy, backend="interpreted")
    )
    assert indexed == scan == interpreted
    return indexed


PROJECTION_QUERIES = [
    'stream("sensor")//reading?[2000-02-01, 2000-05-15]',
    'stream("sensor")//reading?[1990-01-01, 1990-06-01]',  # empty window
    'stream("sensor")//reading?[2000-06-01, now]',  # open "now" bound
    'stream("sensor")//reading?[2000-03-03]',  # instant at a vtFrom boundary
    'stream("sensor")//reading?[2000-03-03, 2000-03-03]',  # degenerate span
    'stream("sensor")//reading?[2000-12-20, now]',  # only open-ended versions
    'stream("sensor")//alarm?[2000-03-01, 2000-06-30]',
    'stream("sensor")//alarm?[2000-02-10, 2000-02-10]',  # instant == event time
    'stream("sensor")//reading#[1, 1]',
    'stream("sensor")//reading#[2, 4]',
    'stream("sensor")//reading#[3, 99]',  # end past the version count
    'stream("sensor")//alarm#[last]',
    'for $r in stream("sensor")//reading?[2000-02-01, 2000-04-01] return vtFrom($r)',
    'for $r in stream("sensor")//reading?[2000-02-01, 2000-04-01] return vtTo($r)',
]


class TestProjectionDifferential:
    @pytest.mark.parametrize("strategy", [Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ])
    @pytest.mark.parametrize("query", PROJECTION_QUERIES)
    def test_indexed_equals_scan_equals_interpreted(self, query, strategy):
        assert_identical(query, strategy)

    def test_non_empty_windows_have_answers(self):
        # Guard against the suite passing vacuously on an empty stream.
        assert len(assert_identical(PROJECTION_QUERIES[0])) == 10
        assert assert_identical(PROJECTION_QUERIES[1]) == []

    def test_begin_after_end_raises_on_every_path(self):
        query = 'stream("sensor")//reading?[2000-05-01, 2000-01-01]'
        for run in (
            lambda: INDEXED.execute(query),
            lambda: SCAN.execute(query),
            lambda: INDEXED.execute(query, backend="interpreted"),
        ):
            with pytest.raises(XQueryTypeError):
                run()

    def test_index_hook_engages(self):
        hook = INDEXED.temporal_index
        hook.reset()
        INDEXED.execute(PROJECTION_QUERIES[0])
        assert hook.hits > 0

    def test_interpreted_backend_never_consults_the_hook(self):
        hook = INDEXED.temporal_index
        hook.reset()
        INDEXED.execute(PROJECTION_QUERIES[0], backend="interpreted")
        assert hook.hits == 0 and hook.misses == 0

    def test_disabled_engine_never_consults_the_hook(self):
        hook = SCAN.temporal_index
        hook.reset()
        SCAN.execute(PROJECTION_QUERIES[0])
        assert hook.hits == 0 and hook.misses == 0


JOIN_OPS = [
    "before",
    "after",
    "meets",
    "met-by",
    "overlaps",
    "during",
    "icontains",
    "istarts",
    "finishes",
    "iequals",
]


def join_query(op: str, inner: str = "alarm") -> str:
    return (
        'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
        f'for $y in stream("sensor")//{inner}?[2000-01-01, 2000-12-31] '
        f"where $x {op} $y "
        'return <hit xv="{$x/@v}" xs="{$x/@s}" y="{$y/@n}{$y/@v}"/>'
    )


class TestCoincidenceJoinDifferential:
    @pytest.mark.parametrize("op", JOIN_OPS)
    @pytest.mark.parametrize("inner", ["alarm", "reading"])
    def test_merge_join_equals_nested_loop(self, op, inner):
        query = join_query(op, inner)
        compiled = INDEXED.compile(query)
        assert compiled.merge_joins == 1
        merge = normalized(INDEXED.execute(compiled))
        nested = normalized(INDEXED.execute(INDEXED.compile(query, merge_joins=False)))
        interpreted = normalized(INDEXED.execute(query, backend="interpreted"))
        assert merge == nested == interpreted

    def test_join_produces_answers(self):
        # overlaps over reading x reading matches at least the self-pairs.
        assert len(normalized(INDEXED.execute(join_query("overlaps", "reading")))) >= 14

    @pytest.mark.parametrize(
        "query",
        [
            # outer side empty
            'for $x in stream("sensor")//reading?[1990-01-01, 1990-02-01] '
            'for $y in stream("sensor")//alarm?[2000-01-01, 2000-12-31] '
            "where $x overlaps $y return 1",
            # inner side empty
            'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
            'for $y in stream("sensor")//alarm?[1990-01-01, 1990-02-01] '
            "where $x overlaps $y return 1",
        ],
    )
    def test_empty_sides(self, query):
        assert INDEXED.compile(query).merge_joins == 1
        assert assert_identical(query) == []

    def test_residual_conjuncts_preserved(self):
        query = (
            'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
            'for $y in stream("sensor")//alarm?[2000-01-01, 2000-12-31] '
            'where $x overlaps $y and $y/@n != "2" and $x/@s = "a" '
            'return <hit v="{$x/@v}" n="{$y/@n}"/>'
        )
        assert INDEXED.compile(query).merge_joins == 1
        result = assert_identical(query)
        assert result  # the residual filter keeps some, drops others
        assert all('n="2"' not in item for item in result)

    def test_evaluator_runs_lowered_ast_as_nested_loop(self):
        # The IntervalJoinFLWOR node dispatches to the plain FLWOR rule in
        # the interpreter: evaluating the lowered AST directly must agree.
        from repro.xquery.evaluator import Evaluator

        query = join_query("overlaps")
        compiled = INDEXED.compile(query)
        assert compiled.merge_joins == 1
        result = Evaluator(INDEXED.build_context()).evaluate_module(compiled.translated)
        assert normalized(result) == normalized(
            INDEXED.execute(query, backend="interpreted")
        )


class TestMergeJoinLowering:
    def test_interpreted_backend_is_never_lowered(self):
        compiled = INDEXED.compile(join_query("overlaps"), backend="interpreted")
        assert compiled.merge_joins == 0

    def test_order_by_blocks_lowering(self):
        query = (
            'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
            'for $y in stream("sensor")//alarm?[2000-01-01, 2000-12-31] '
            "where $x overlaps $y order by $x/@v return $y/@n"
        )
        assert INDEXED.compile(query).merge_joins == 0
        assert_identical(query)

    def test_inner_source_referencing_outer_blocks_lowering(self):
        query = (
            'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
            "for $y in ($x) where $x overlaps $y return $y/@v"
        )
        assert INDEXED.compile(query).merge_joins == 0
        assert_identical(query)

    def test_constructor_inner_source_blocks_lowering(self):
        query = (
            'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
            'for $y in <reading vtFrom="2000-02-01T00:00:00" vtTo="2000-03-01T00:00:00"/> '
            "where $x overlaps $y return $x/@v"
        )
        assert INDEXED.compile(query).merge_joins == 0
        assert_identical(query)

    def test_non_leftmost_join_conjunct_blocks_lowering(self):
        query = (
            'for $x in stream("sensor")//reading?[2000-01-01, 2000-12-31] '
            'for $y in stream("sensor")//alarm?[2000-01-01, 2000-12-31] '
            'where $x/@s = "a" and $x overlaps $y return $y/@n'
        )
        assert INDEXED.compile(query).merge_joins == 0
        assert_identical(query)

    def test_merge_joins_flag_is_part_of_the_plan_cache_key(self):
        engine = make_engine()
        query = join_query("overlaps")
        on = engine.compile(query)
        off = engine.compile(query, merge_joins=False)
        assert on is not off
        assert (on.merge_joins, off.merge_joins) == (1, 0)
        assert engine.compile(query) is on
        assert engine.compile(query, merge_joins=False) is off


class TestEndpointIndexStore:
    @pytest.fixture()
    def store(self) -> FragmentStore:
        store = FragmentStore(SENSOR_STRUCTURE)
        store.extend(sensor_fillers())
        return store

    def test_temporal_entry(self, store):
        froms, tos, open_last = store.endpoint_index(1)
        assert open_last
        assert froms == sorted(froms)
        assert tos == froms[1:]
        assert len(froms) == len(store.versions_of(1)) == 8

    def test_event_entry(self, store):
        froms, tos, open_last = store.endpoint_index(3)
        assert not open_last
        assert tos is froms  # events: instantaneous lifespans

    def test_snapshot_and_unknown_ids_are_unindexed(self, store):
        assert store.endpoint_index(0) is None  # snapshot root
        assert store.endpoint_index(99) is None

    def test_disabled_index(self):
        store = FragmentStore(SENSOR_STRUCTURE, use_index=False)
        store.extend(sensor_fillers())
        assert store.endpoint_index(1) is None
        assert store.versions_in_window(1, 0.0, 1e12) is None

    def test_window_is_a_superset_of_exact_survivors(self, store):
        versions = store.versions_of(1)
        for begin, end in [
            (t(2, 1), t(5, 15)),
            (t(3, 3), t(3, 3)),
            (t(1, 1), t(12, 31)),
            (XSDateTime(1990, 1, 1), XSDateTime(1990, 2, 1)),
        ]:
            lo, hi = store.versions_in_window(
                1, begin.to_epoch_seconds(), end.to_epoch_seconds()
            )
            for position, version in enumerate(versions):
                vt_from = XSDateTime.parse(version.attrs["vtFrom"])
                vt_to_attr = version.attrs["vtTo"]
                open_ended = vt_to_attr == "now"
                vt_to = NOW if open_ended else XSDateTime.parse(vt_to_attr)
                survives = not (
                    vt_from > end or (vt_to < begin if open_ended else vt_to <= begin)
                )
                if survives:
                    assert lo <= position < hi

    def test_index_invalidated_by_append(self, store):
        froms, _, _ = store.endpoint_index(1)
        assert len(froms) == 8
        store.append(Filler(1, 2, t(12, 25), frag('<reading s="a" v="9"/>')))
        froms, tos, _ = store.endpoint_index(1)
        assert len(froms) == 9
        assert tos == froms[1:]

    def test_tsid_endpoints(self, store):
        endpoints = store.tsid_endpoints(2)
        assert endpoints == sorted(endpoints)
        assert len(endpoints) == 14  # 8 + 5 + 1 reading fillers
        assert store.tsid_endpoint_count(2) == 14
        assert store.tsid_endpoint_count(
            2, t(1, 1).to_epoch_seconds(), t(1, 31).to_epoch_seconds()
        ) == 2  # reading A v0 + reading B v0
        assert store.tsid_endpoints(42) == []


class TestExtendBatchesInvalidation:
    def test_extend_invalidates_once_per_distinct_id(self):
        store = FragmentStore(SENSOR_STRUCTURE)
        fillers = sensor_fillers()
        distinct_ids = {f.filler_id for f in fillers}
        before = store.invalidations
        assert store.extend(fillers) == len(fillers)
        events = store.invalidations - before
        assert events == len(distinct_ids)  # 5, not the 20 fillers ingested
        assert events <= len(fillers)

    def test_append_invalidates_once(self):
        store = FragmentStore(SENSOR_STRUCTURE)
        before = store.invalidations
        store.append(Filler(7, 2, t(1, 1), frag('<reading v="0"/>')))
        assert store.invalidations - before == 1

    def test_duplicates_do_not_invalidate(self):
        store = FragmentStore(SENSOR_STRUCTURE)
        store.extend(sensor_fillers())
        before = store.invalidations
        assert store.extend(sensor_fillers()) == 0
        assert store.invalidations == before


class TestPruneConsistency:
    def test_pruned_store_never_serves_stale_wrappers(self):
        store = FragmentStore(SENSOR_STRUCTURE)
        store.extend(sensor_fillers())
        wrapper = store.get_fillers(1)  # warm the wrapper cache
        assert len(wrapper.children) == 8
        assert store.prune_before(t(5, 1)) > 0
        fresh = store.get_fillers(1)
        assert fresh is not wrapper
        assert len(fresh.children) == len(store.versions_of(1)) < 8

    def test_prune_rebuilds_endpoint_index(self):
        store = FragmentStore(SENSOR_STRUCTURE)
        store.extend(sensor_fillers())
        store.endpoint_index(1)  # warm
        store.endpoint_index(3)
        store.prune_before(t(5, 1))
        froms, tos, open_last = store.endpoint_index(1)
        assert open_last
        assert froms == [f.valid_time.to_epoch_seconds() for f in store.fillers_of(1)]
        assert tos == froms[1:]
        for tsid in (2, 3):
            expected = sorted(
                f.valid_time.to_epoch_seconds()
                for f in store.fillers_of(1) + store.fillers_of(2)
                + store.fillers_of(3) + store.fillers_of(4)
                if f.tsid == tsid
            )
            assert store.tsid_endpoints(tsid) == expected

    def test_queries_agree_after_prune(self):
        horizon = t(5, 1)
        indexed = make_engine()
        scan = make_engine(use_temporal_index=False, merge_joins=False)
        for engine in (indexed, scan):
            engine.stores["sensor"].prune_before(horizon)
        query = 'stream("sensor")//reading?[2000-06-01, now]'
        a = normalized(indexed.execute(query))
        b = normalized(scan.execute(query))
        c = normalized(indexed.execute(query, backend="interpreted"))
        assert a == b == c
        assert a  # survivors exist


_POINTS = st.tuples(st.integers(1, 12), st.integers(1, 28), st.integers(0, 23))


class TestArrivalOrderProperty:
    @given(st.randoms(use_true_random=False), st.sampled_from(PROJECTION_QUERIES))
    @settings(max_examples=20, deadline=None)
    def test_shuffled_arrival_indexed_equals_scan(self, rng, query):
        fillers = sensor_fillers()
        rng.shuffle(fillers)
        indexed = make_engine(fillers)
        scan = make_engine(fillers, use_temporal_index=False, merge_joins=False)
        assert normalized(indexed.execute(query)) == normalized(scan.execute(query))

    @given(_POINTS, _POINTS)
    @settings(max_examples=40, deadline=None)
    def test_random_windows_agree(self, p1, p2):
        (m1, d1, h1), (m2, d2, h2) = sorted((p1, p2))
        query = (
            f'stream("sensor")//reading'
            f"?[2000-{m1:02d}-{d1:02d}T{h1:02d}:00:00, "
            f"2000-{m2:02d}-{d2:02d}T{h2:02d}:00:00]"
        )
        assert_identical(query)

    @given(st.randoms(use_true_random=False), st.sampled_from(JOIN_OPS))
    @settings(max_examples=20, deadline=None)
    def test_shuffled_arrival_merge_join_agrees(self, rng, op):
        fillers = sensor_fillers()
        rng.shuffle(fillers)
        indexed = make_engine(fillers)
        query = join_query(op, "reading")
        merge = normalized(indexed.execute(query))
        nested = normalized(indexed.execute(indexed.compile(query, merge_joins=False)))
        assert merge == nested
