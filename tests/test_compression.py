"""Tests for tag-name compression (paper §4.1 extension)."""

import pytest

from repro import Fragmenter, SimulatedClock, StreamClient, StreamServer, TagStructure
from repro.dom import parse_document, serialize
from repro.streams.compression import CompressingChannel, TagCodec
from repro.temporal import XSDateTime
from repro.xmark import auction_tag_structure, generate_auction_document

from tests.conftest import CREDIT_TAG_STRUCTURE_XML


@pytest.fixture()
def codec():
    return TagCodec(TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML))


class TestTagCodec:
    def test_codes_assigned_in_preorder(self, codec):
        assert codec.code_of("creditAccounts") == "t1"
        assert codec.code_of("account") == "t2"
        assert len(codec) == 8

    def test_structural_names_preserved(self, codec):
        assert codec.code_of("hole") == "hole"
        assert codec.code_of("filler") == "filler"

    def test_unknown_names_pass_through(self, codec):
        assert codec.code_of("zzz") == "zzz"
        assert codec.name_of("zzz") == "zzz"

    def test_encode_decode_element_round_trip(self, codec):
        element = parse_document(
            "<account id='1'><customer>X</customer>"
            "<hole id='5' tsid='4'/></account>"
        ).document_element
        encoded = codec.encode(element)
        assert encoded.tag == "t2"
        assert encoded.first("hole") is not None  # holes untouched
        assert serialize(codec.decode(encoded)) == serialize(element)

    def test_attributes_and_text_preserved(self, codec):
        element = parse_document("<customer a='b'>John &amp; co</customer>").document_element
        round_tripped = codec.decode(codec.encode(element))
        assert serialize(round_tripped) == serialize(element)

    def test_wire_round_trip(self, codec):
        payload = (
            '<filler id="3" tsid="5" validTime="2003-10-23T12:23:34">'
            '<transaction id="1"><vendor>V</vendor><amount>38</amount>'
            "</transaction></filler>"
        )
        encoded = codec.encode_wire(payload)
        assert "transaction" not in encoded
        assert codec.decode_wire(encoded) == payload

    def test_encoding_shrinks_wire(self, codec):
        payload = (
            '<filler id="3" tsid="5" validTime="2003-10-23T12:23:34">'
            '<transaction id="1"><vendor>V</vendor><amount>38</amount>'
            "</transaction></filler>"
        )
        assert len(codec.encode_wire(payload)) < len(payload)


class TestDecompressIter:
    PAYLOAD = (
        '<filler id="3" tsid="5" validTime="2003-10-23T12:23:34">'
        '<transaction id="1"><vendor>V &amp; W</vendor><amount>38</amount>'
        "</transaction></filler>"
    )

    def test_matches_decode_wire(self, codec):
        encoded = codec.encode_wire(self.PAYLOAD)
        streamed = "".join(codec.decompress_iter([encoded]))
        assert streamed == codec.decode_wire(encoded) == self.PAYLOAD

    def test_every_split_point_is_equivalent(self, codec):
        encoded = codec.encode_wire(self.PAYLOAD)
        for cut in range(len(encoded) + 1):
            chunks = [encoded[:cut], encoded[cut:]]
            assert "".join(codec.decompress_iter(chunks)) == self.PAYLOAD, cut

    def test_single_character_chunks(self, codec):
        encoded = codec.encode_wire(self.PAYLOAD)
        assert "".join(codec.decompress_iter(iter(encoded))) == self.PAYLOAD

    def test_opaque_sections_pass_through(self, codec):
        wire = "<t2><!-- t2 stays --><![CDATA[<t2>]]><?pi t2?>x</t2>"
        decoded = "".join(codec.decompress_iter([wire]))
        assert decoded == (
            "<account><!-- t2 stays --><![CDATA[<t2>]]><?pi t2?>x</account>"
        )
        # ...at every chunk boundary, including mid-marker splits.
        for cut in range(len(wire) + 1):
            assert "".join(codec.decompress_iter([wire[:cut], wire[cut:]])) == decoded

    def test_quoted_gt_does_not_end_tag(self, codec):
        wire = "<t2 note='a>b'>x</t2>"
        for cut in range(len(wire) + 1):
            assert "".join(
                codec.decompress_iter([wire[:cut], wire[cut:]])
            ) == "<account note='a>b'>x</account>"

    def test_incomplete_trailing_markup_flushes_verbatim(self, codec):
        assert "".join(codec.decompress_iter(["text<t2 a="])) == "text<account a="
        assert "".join(codec.decompress_iter(["<!-- open"])) == "<!-- open"
        assert "".join(codec.decompress_iter(["done<"])) == "done<"

    def test_unmapped_names_and_empty_input(self, codec):
        assert "".join(codec.decompress_iter([])) == ""
        assert "".join(codec.decompress_iter(["<zzz/>"])) == "<zzz/>"


class TestCompressingChannel:
    def test_transparent_to_client(self):
        structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
        clock = SimulatedClock("2003-10-01T00:00:00")
        channel = CompressingChannel(TagCodec(structure))
        client = StreamClient(clock)
        client.tune_in(channel)
        server = StreamServer("credit", structure, channel, clock)
        server.announce()
        server.publish_document(
            parse_document(
                "<creditAccounts><account id='1'><customer>X</customer>"
                "<creditLimit>100</creditLimit></account></creditAccounts>"
            )
        )
        # The client sees ordinary tag names and can query normally.
        result = client.engine.execute(
            'count(stream("credit")//account)', now=clock.now()
        )
        assert result == [1]
        assert channel.bytes_saved > 0

    def test_savings_on_xmark_stream(self):
        structure = auction_tag_structure()
        codec = TagCodec(structure)
        fragmenter = Fragmenter(structure)
        fillers = fragmenter.fragment(
            generate_auction_document(0.0), XSDateTime(2003, 1, 1)
        )
        raw = sum(f.wire_size for f in fillers)
        encoded = sum(len(codec.encode_wire(f.to_xml()).encode()) for f in fillers)
        # The paper's claim: tag abbreviation compresses stream data.
        assert encoded < raw
        savings = 1 - encoded / raw
        assert savings > 0.10  # >10% on verbose auction markup
