"""Tests for store retention (prune_before)."""

import pytest

from repro import FragmentStore, Strategy, TagStructure, XCQLEngine
from repro.dom import Element, serialize
from repro.fragments.model import Filler
from repro.temporal import XSDateTime

from tests.conftest import CREDIT_TAG_STRUCTURE_XML, NOW_2003_12_15


def limit(value: str) -> Element:
    element = Element("creditLimit")
    element.add_text(value)
    return element


def txn(txn_id: str) -> Element:
    element = Element("transaction", {"id": txn_id})
    amount = Element("amount")
    amount.add_text("10")
    element.append(amount)
    return element


@pytest.fixture()
def versioned_store():
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    store = FragmentStore(structure)
    # Four limit versions, quarterly.
    for month, value in ((1, "100"), (4, "200"), (7, "300"), (10, "400")):
        store.append(Filler(4, 4, XSDateTime(2003, month, 1), limit(value)))
    # Three transaction events across the year (distinct ids).
    for index, month in enumerate((2, 6, 11)):
        store.append(Filler(100 + index, 5, XSDateTime(2003, month, 15), txn(str(index))))
    return store


class TestPruneTemporal:
    def test_keeps_version_current_at_horizon(self, versioned_store):
        dropped = versioned_store.prune_before(XSDateTime(2003, 8, 1))
        # Versions 100 and 200 are fully superseded by Aug 1; version 300
        # (current at the horizon) and 400 survive.
        assert dropped >= 2
        values = [v.text() for v in versioned_store.versions_of(4)]
        assert values == ["300", "400"]

    def test_current_state_unchanged(self, versioned_store):
        before = [serialize(v) for v in versioned_store.versions_of(4)][-1]
        versioned_store.prune_before(XSDateTime(2003, 8, 1))
        after = [serialize(v) for v in versioned_store.versions_of(4)][-1]
        assert after == before

    def test_boundary_version_survives(self, versioned_store):
        # Horizon exactly at a version change: the *new* version is current.
        versioned_store.prune_before(XSDateTime(2003, 4, 1))
        values = [v.text() for v in versioned_store.versions_of(4)]
        assert values == ["200", "300", "400"]

    def test_lifespans_rederived_after_prune(self, versioned_store):
        versioned_store.prune_before(XSDateTime(2003, 8, 1))
        first = versioned_store.versions_of(4)[0]
        assert first.attrs["vtFrom"] == "2003-07-01T00:00:00"
        assert first.attrs["vtTo"] == "2003-10-01T00:00:00"


class TestPruneEvents:
    def test_old_events_dropped(self, versioned_store):
        versioned_store.prune_before(XSDateTime(2003, 7, 1))
        remaining = [
            fid for fid in (100, 101, 102) if versioned_store.versions_of(fid)
        ]
        assert remaining == [102]

    def test_event_at_horizon_kept(self, versioned_store):
        versioned_store.prune_before(XSDateTime(2003, 6, 15))
        assert versioned_store.versions_of(101) != []


class TestPruneIntegration:
    def test_window_queries_unchanged_after_prune(self):
        structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
        horizon = XSDateTime(2003, 11, 1)

        def build() -> XCQLEngine:
            engine = XCQLEngine(default_now=NOW_2003_12_15)
            store = FragmentStore(structure)
            engine.register_stream("credit", structure, store)
            root = Element("creditAccounts")
            root.append(Element("hole", {"id": "1", "tsid": "2"}))
            account = Element("account", {"id": "9"})
            account.append(Element("hole", {"id": "4", "tsid": "4"}))
            account.append(Element("hole", {"id": "100", "tsid": "5"}))
            account.append(Element("hole", {"id": "101", "tsid": "5"}))
            store.append(Filler(0, 1, XSDateTime(2003, 1, 1), root))
            store.append(Filler(1, 2, XSDateTime(2003, 1, 1), account))
            for month, value in ((1, "100"), (6, "500")):
                store.append(Filler(4, 4, XSDateTime(2003, month, 1), limit(value)))
            store.append(Filler(100, 5, XSDateTime(2003, 5, 15), txn("old")))
            store.append(Filler(101, 5, XSDateTime(2003, 11, 15), txn("new")))
            return engine

        query = (
            'for $a in stream("credit")//account return '
            "(count($a/transaction?[2003-11-01, now]), $a/creditLimit?[now])"
        )
        fresh = build()
        expected = fresh.execute(query)
        pruned_engine = build()
        dropped = pruned_engine.stores["credit"].prune_before(horizon)
        assert dropped == 2  # the superseded limit and the May event
        actual = pruned_engine.execute(query)
        assert [serialize(x) if hasattr(x, "string_value") else x for x in actual] == [
            serialize(x) if hasattr(x, "string_value") else x for x in expected
        ]

    def test_stats_consistent_after_prune(self, versioned_store):
        total = versioned_store.filler_count
        dropped = versioned_store.prune_before(XSDateTime(2003, 8, 1))
        assert versioned_store.filler_count == total - dropped
        assert len(versioned_store) == versioned_store.filler_count

    def test_prune_idempotent(self, versioned_store):
        horizon = XSDateTime(2003, 8, 1)
        versioned_store.prune_before(horizon)
        assert versioned_store.prune_before(horizon) == 0

    def test_repruned_fragment_reingestable(self, versioned_store):
        """After pruning, a *newer* version can still arrive normally."""
        versioned_store.prune_before(XSDateTime(2003, 8, 1))
        assert versioned_store.append(
            Filler(4, 4, XSDateTime(2003, 12, 1), limit("999"))
        )
        assert [v.text() for v in versioned_store.versions_of(4)] == [
            "300",
            "400",
            "999",
        ]
