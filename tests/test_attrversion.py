"""Tests for attribute versioning via pseudo-elements (paper §8 ext)."""

import pytest

from repro import Channel, Fragmenter, SimulatedClock, StreamClient, StreamServer, TagStructure
from repro.dom import Element, parse_document, serialize
from repro.fragments.attrversion import (
    attribute_of,
    demote_attributes,
    is_pseudo,
    promote_attributes,
    pseudo_name,
    with_versioned_attributes,
)
from repro.fragments.tagstructure import TagType
from repro.temporal import XSDateTime

NOW = XSDateTime.parse("2003-12-15T00:00:00")


class TestPseudoNames:
    def test_round_trip(self):
        assert pseudo_name("tier") == "attr:tier"
        assert attribute_of("attr:tier") == "tier"
        assert is_pseudo("attr:tier")
        assert not is_pseudo("tier")

    def test_attribute_of_rejects_plain(self):
        with pytest.raises(ValueError):
            attribute_of("tier")


class TestPromotion:
    def test_promote_moves_attribute(self):
        element = parse_document('<account id="1" tier="gold"/>').document_element
        promoted = promote_attributes(element, ["tier"])
        assert "tier" not in promoted.attrs
        assert promoted.attrs["id"] == "1"  # unlisted attributes stay
        pseudo = promoted.first("attr:tier")
        assert pseudo is not None and pseudo.text() == "gold"

    def test_promote_idempotent(self):
        element = parse_document('<account tier="gold"/>').document_element
        once = promote_attributes(element, ["tier"])
        twice = promote_attributes(once, ["tier"])
        assert serialize(twice) == serialize(once)

    def test_promote_missing_attribute_noop(self):
        element = parse_document("<account/>").document_element
        assert serialize(promote_attributes(element, ["tier"])) == "<account/>"

    def test_original_untouched(self):
        element = parse_document('<account tier="gold"/>').document_element
        promote_attributes(element, ["tier"])
        assert element.attrs == {"tier": "gold"}


class TestDemotion:
    def test_current_version_becomes_attribute(self):
        element = parse_document(
            "<account>"
            '<attr:tier vtFrom="2003-01-01T00:00:00" vtTo="2003-06-01T00:00:00">silver</attr:tier>'
            '<attr:tier vtFrom="2003-06-01T00:00:00" vtTo="now">gold</attr:tier>'
            "<customer>X</customer></account>"
        ).document_element
        demoted = demote_attributes(element, NOW)
        assert demoted.attrs["tier"] == "gold"
        assert demoted.first("attr:tier") is None
        assert demoted.first("customer") is not None

    def test_historical_demotion(self):
        element = parse_document(
            "<account>"
            '<attr:tier vtFrom="2003-01-01T00:00:00" vtTo="2003-06-01T00:00:00">silver</attr:tier>'
            '<attr:tier vtFrom="2003-06-01T00:00:00" vtTo="now">gold</attr:tier>'
            "</account>"
        ).document_element
        demoted = demote_attributes(element, XSDateTime.parse("2003-03-01T00:00:00"))
        assert demoted.attrs["tier"] == "silver"

    def test_no_current_version_no_attribute(self):
        element = parse_document(
            "<account>"
            '<attr:tier vtFrom="2004-01-01T00:00:00" vtTo="now">future</attr:tier>'
            "</account>"
        ).document_element
        demoted = demote_attributes(element, NOW)
        assert "tier" not in demoted.attrs

    def test_recurses_into_children(self):
        element = parse_document(
            "<root><account>"
            '<attr:tier vtFrom="2003-01-01T00:00:00" vtTo="now">gold</attr:tier>'
            "</account></root>"
        ).document_element
        demoted = demote_attributes(element, NOW)
        assert demoted.first("account").attrs["tier"] == "gold"


class TestStructureExtension:
    BASE = TagStructure.build(
        {
            "name": "creditAccounts",
            "type": "snapshot",
            "children": [
                {
                    "name": "account",
                    "type": "temporal",
                    "children": [{"name": "customer", "type": "snapshot"}],
                }
            ],
        }
    )

    def test_pseudo_tag_added_temporal(self):
        extended = with_versioned_attributes(self.BASE, {"account": ["tier"]})
        account = extended.resolve_path(["creditAccounts", "account"])
        pseudo = account.child("attr:tier")
        assert pseudo is not None
        assert pseudo.type is TagType.TEMPORAL

    def test_fresh_tsids(self):
        extended = with_versioned_attributes(self.BASE, {"account": ["tier"]})
        tsids = [t.tsid for t in extended.all_tags()]
        assert len(tsids) == len(set(tsids))

    def test_original_tags_preserved(self):
        extended = with_versioned_attributes(self.BASE, {"account": ["tier"]})
        assert extended.resolve_path(["creditAccounts", "account", "customer"])


class TestEndToEnd:
    def test_versioned_attribute_pipeline(self):
        """Promote -> fragment -> stream update -> XCQL query, per §8."""
        structure = with_versioned_attributes(
            TestStructureExtension.BASE, {"account": ["tier"]}
        )
        clock = SimulatedClock("2003-01-01T00:00:00")
        channel = Channel()
        client = StreamClient(clock)
        client.tune_in(channel)
        server = StreamServer("credit", structure, channel, clock)
        server.announce()

        account = parse_document(
            '<account id="1" tier="silver"><customer>X</customer></account>'
        ).document_element
        root = Element("creditAccounts")
        root.append(promote_attributes(account, ["tier"]))
        server.publish_document(root)

        # The tier changes mid-year: stream a new pseudo-element version.
        clock.advance("P150D")
        account_hole = server.hole_id(0, "account", "1")
        tier_hole = server.hole_id(account_hole, "attr:tier", "1")
        new_tier = Element("attr:tier")
        new_tier.add_text("gold")
        server.update_fragment(tier_hole, new_tier)

        engine = client.engine
        current = engine.execute(
            'for $a in stream("credit")//account return $a/attr:tier?[now]',
            now=clock.now(),
        )
        assert [e.text() for e in current] == ["gold"]
        historical = engine.execute(
            'for $a in stream("credit")//account return $a/attr:tier?[2003-02-01]',
            now=clock.now(),
        )
        assert [e.text() for e in historical] == ["silver"]

        # Demote a materialized snapshot back to plain attributes.
        from repro.fragments import temporalize

        view = temporalize(client.store_of("credit"))
        snapshot = demote_attributes(view.document_element, clock.now())
        assert snapshot.first("account").attrs["tier"] == "gold"
