"""Tests for static analysis (repro.xquery.static, engine.check)."""

import pytest

from repro.xquery.functions import default_functions
from repro.xquery.parser import parse
from repro.xquery.static import check_module, free_variables
from repro.xquery.parser import parse_expression


def check(source: str):
    return [i.code for i in check_module(parse(source, xcql=True), default_functions())]


class TestCheckModule:
    def test_clean(self):
        assert check("for $x in (1, 2) return count(($x))") == []

    def test_undefined_variable(self):
        assert check("$nope + 1") == ["undefined-variable"]

    def test_flwor_binds_in_order(self):
        # $y is used before its let binds it.
        assert "undefined-variable" in check(
            "for $x in ($y) let $y := 1 return $x"
        )

    def test_let_visible_later(self):
        assert check("let $y := 1 return $y + 1") == []

    def test_position_var_bound(self):
        assert check("for $x at $i in (1, 2) return $i") == []

    def test_quantified_binding(self):
        assert check("some $q in (1, 2) satisfies $q = 1") == []
        assert "undefined-variable" in check("some $q in ($q) satisfies 1 = 1")

    def test_unknown_function(self):
        assert check("mystery(1)") == ["unknown-function"]

    def test_bad_arity(self):
        assert check("count(1, 2)") == ["bad-arity"]
        assert check("count()") == ["bad-arity"]

    def test_user_function_params_in_scope(self):
        assert check("define function f($a) { $a + 1 } f(1)") == []

    def test_user_function_arity_checked(self):
        assert "bad-arity" in check("define function f($a) { $a } f(1, 2)")

    def test_duplicate_function(self):
        assert "duplicate" in check(
            "define function f() { 1 } define function f() { 2 } f()"
        )

    def test_duplicate_parameter(self):
        assert "duplicate" in check("define function f($a, $a) { $a } f(1, 2)")

    def test_user_function_sees_other_functions(self):
        assert check(
            "define function g() { 1 } define function f() { g() } f()"
        ) == []

    def test_fn_prefix(self):
        assert check("fn:count((1, 2))") == []

    def test_issue_str(self):
        issues = check_module(parse("$x"), default_functions())
        assert "$x" in str(issues[0])


class TestFreeVariables:
    def test_simple(self):
        assert free_variables(parse_expression("$a + $b")) == {"a", "b"}

    def test_flwor_bound_excluded(self):
        expr = parse_expression("for $x in ($a) return $x + $b")
        assert free_variables(expr) == {"a", "b"}

    def test_nested_scopes(self):
        expr = parse_expression(
            "let $x := $outer return for $y in ($x) return $y"
        )
        assert free_variables(expr) == {"outer"}


class TestEngineCheck:
    def test_clean_query(self, credit_engine):
        assert credit_engine.check(
            'for $a in stream("credit")//account return count($a/transaction)'
        ) == []

    def test_reports_both_kinds(self, credit_engine):
        issues = credit_engine.check('stream("credit")//bogus/mystery($x)')
        codes = {issue.code for issue in issues}
        assert "unknown-path" in codes or "syntax-error" in codes

    def test_undefined_variable_reported(self, credit_engine):
        issues = credit_engine.check('count(stream("credit")//account) + $x')
        assert "undefined-variable" in {issue.code for issue in issues}

    def test_registered_function_known(self, credit_engine):
        credit_engine.register_function("dist", lambda ctx, args: [0], (2, 2))
        assert credit_engine.check("dist(1, 2)") == []
        assert "bad-arity" in {i.code for i in credit_engine.check("dist(1)")}
