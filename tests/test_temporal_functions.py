"""Tests for interval/version projection over element trees."""

import pytest

from repro.dom import parse_document, serialize
from repro.temporal import XSDateTime
from repro.xquery import Context, evaluate
from repro.xquery.errors import XQueryTypeError

NOW = XSDateTime.parse("2003-12-15T00:00:00")


@pytest.fixture()
def ctx():
    context = Context(now=NOW)
    context.register_document(
        "credit.xml",
        parse_document(
            """
            <creditAccounts>
              <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="now">
                <customer>John Smith</customer>
                <creditLimit vtFrom="1998-10-10T12:20:22" vtTo="2001-04-23T23:11:08">2000</creditLimit>
                <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
                <transaction id="12345" vtFrom="2003-10-23T12:23:34" vtTo="2003-10-23T12:23:34">
                  <vendor>Southlake Pizza</vendor>
                  <amount>38.20</amount>
                  <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
                </transaction>
              </account>
            </creditAccounts>
            """
        ),
    )
    return context


class TestIntervalProjection:
    def test_current_version_selected(self, ctx):
        out = evaluate('doc("credit.xml")//creditLimit?[now]', ctx, xcql=True)
        assert len(out) == 1
        assert out[0].text().strip() == "5000"

    def test_historical_version_selected(self, ctx):
        out = evaluate('doc("credit.xml")//creditLimit?[2000-01-01]', ctx, xcql=True)
        assert out[0].text().strip() == "2000"

    def test_boundary_instant_prefers_new_version(self, ctx):
        out = evaluate(
            'doc("credit.xml")//creditLimit?[2001-04-23T23:11:08]', ctx, xcql=True
        )
        assert [e.text().strip() for e in out] == ["5000"]

    def test_clipping(self, ctx):
        out = evaluate(
            'doc("credit.xml")//creditLimit?[2003-01-01, 2003-02-01]', ctx, xcql=True
        )
        assert out[0].attrs["vtFrom"] == "2003-01-01T00:00:00"
        assert out[0].attrs["vtTo"] == "2003-02-01T00:00:00"

    def test_event_point_in_window(self, ctx):
        out = evaluate(
            'doc("credit.xml")//transaction?[2003-10-01, 2003-11-01]', ctx, xcql=True
        )
        assert len(out) == 1

    def test_event_point_outside_window(self, ctx):
        out = evaluate(
            'doc("credit.xml")//transaction?[2003-11-01, 2003-12-01]', ctx, xcql=True
        )
        assert out == []

    def test_window_prunes_children_too(self, ctx):
        # Project the account to a window before the status change: the
        # nested status (from 2003-10-23) must disappear.
        out = evaluate(
            'doc("credit.xml")//account?[1999-01-01, 2000-01-01]', ctx, xcql=True
        )
        assert len(out) == 1
        assert "status" not in serialize(out[0])
        assert "2000" in serialize(out[0])  # old creditLimit survives

    def test_snapshot_children_kept(self, ctx):
        out = evaluate('doc("credit.xml")//account?[now]', ctx, xcql=True)
        assert "John Smith" in serialize(out[0])

    def test_default_projection_is_everything(self, ctx):
        everything = evaluate('doc("credit.xml")//creditLimit', ctx, xcql=True)
        assert len(everything) == 2

    def test_inputs_not_mutated(self, ctx):
        before = serialize(evaluate('doc("credit.xml")', ctx)[0])
        evaluate('doc("credit.xml")//account?[now]', ctx, xcql=True)
        after = serialize(evaluate('doc("credit.xml")', ctx)[0])
        assert before == after

    def test_inverted_interval_rejected(self, ctx):
        with pytest.raises(XQueryTypeError):
            evaluate('doc("credit.xml")//account?[2003-02-01, 2003-01-01]', ctx, xcql=True)

    def test_atomics_pass_through(self, ctx):
        assert evaluate("(1, 2)?[now]", ctx, xcql=True) == [1, 2]


class TestVersionProjection:
    def test_first_version(self, ctx):
        out = evaluate('doc("credit.xml")//creditLimit#[1]', ctx, xcql=True)
        assert [e.text().strip() for e in out] == ["2000"]

    def test_last_version(self, ctx):
        out = evaluate('doc("credit.xml")//creditLimit#[last]', ctx, xcql=True)
        assert [e.text().strip() for e in out] == ["5000"]

    def test_range_of_versions(self, ctx):
        out = evaluate('doc("credit.xml")//creditLimit#[1, 2]', ctx, xcql=True)
        assert len(out) == 2

    def test_out_of_range_empty(self, ctx):
        assert evaluate('doc("credit.xml")//creditLimit#[5]', ctx, xcql=True) == []

    def test_version_lifespan_slices_children(self, ctx):
        # Version 1 of the account covers times when no transaction existed
        # yet... the single account version keeps its children.
        out = evaluate('doc("credit.xml")//account#[1]', ctx, xcql=True)
        assert len(out) == 1

    def test_combined_with_interval(self, ctx):
        out = evaluate(
            'doc("credit.xml")//creditLimit?[1998-01-01, now]#[1]', ctx, xcql=True
        )
        assert [e.text().strip() for e in out] == ["2000"]

    def test_inverted_range_rejected(self, ctx):
        with pytest.raises(XQueryTypeError):
            evaluate('doc("credit.xml")//creditLimit#[2, 1]', ctx, xcql=True)


class TestVersionSemanticsExample:
    def test_paper_tuple_window_example(self, ctx):
        # stream("credit")//transaction[vendor="ABC Inc"]#[1,10] — the paper's
        # §6 example: version projection after a predicate filter.
        out = evaluate(
            'doc("credit.xml")//transaction[vendor = "Southlake Pizza"]#[1, 10]',
            ctx,
            xcql=True,
        )
        assert len(out) == 1
