"""Tests for temporal coalescing (repro.temporal.coalesce)."""

from hypothesis import given, strategies as st

from repro.temporal.chrono import XSDateTime
from repro.temporal.coalesce import Versioned, coalesce_versions, version_sequence
from repro.temporal.interval import TimeInterval

T = XSDateTime.parse


def v(value, begin, end) -> Versioned:
    return Versioned(value, TimeInterval(T(begin), T(end)))


class TestCoalesce:
    def test_merges_equal_adjacent(self):
        versions = [
            v("5000", "2003-01-01", "2003-02-01"),
            v("5000", "2003-02-01", "2003-03-01"),
        ]
        merged = coalesce_versions(versions)
        assert merged == [v("5000", "2003-01-01", "2003-03-01")]

    def test_keeps_different_values(self):
        versions = [
            v("2000", "2003-01-01", "2003-02-01"),
            v("5000", "2003-02-01", "2003-03-01"),
        ]
        assert coalesce_versions(versions) == versions

    def test_gap_prevents_merge(self):
        versions = [
            v("x", "2003-01-01", "2003-01-10"),
            v("x", "2003-02-01", "2003-02-10"),
        ]
        assert len(coalesce_versions(versions)) == 2

    def test_overlapping_equal_merge(self):
        versions = [
            v("x", "2003-01-01", "2003-01-20"),
            v("x", "2003-01-10", "2003-02-10"),
        ]
        merged = coalesce_versions(versions)
        assert merged == [v("x", "2003-01-01", "2003-02-10")]

    def test_custom_equality(self):
        versions = [
            v("A", "2003-01-01", "2003-02-01"),
            v("a", "2003-02-01", "2003-03-01"),
        ]
        merged = coalesce_versions(versions, equal=lambda x, y: x.lower() == y.lower())
        assert len(merged) == 1

    def test_empty(self):
        assert coalesce_versions([]) == []


class TestVersionSequence:
    def test_builds_adjacent_versions(self):
        boundaries = [T("2003-01-01"), T("2003-02-01"), T("2003-03-01")]
        versions = version_sequence(["a", "b"], boundaries)
        assert versions[0].interval.end == versions[1].interval.begin

    def test_boundary_count_checked(self):
        import pytest

        with pytest.raises(ValueError):
            version_sequence(["a"], [T("2003-01-01")])


_value = st.sampled_from(["a", "b", "c"])
_times = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=2, max_size=12, unique=True
).map(sorted)


@st.composite
def _chains(draw):
    times = draw(_times)
    boundaries = [XSDateTime.from_epoch_seconds(1_000_000_000 + t) for t in times]
    values = [draw(_value) for _ in range(len(boundaries) - 1)]
    return version_sequence(values, boundaries)


class TestCoalesceProperties:
    @given(_chains())
    def test_idempotent(self, chain):
        once = coalesce_versions(chain)
        assert coalesce_versions(once) == once

    @given(_chains())
    def test_never_grows(self, chain):
        assert len(coalesce_versions(chain)) <= len(chain)

    @given(_chains())
    def test_no_adjacent_equal_values_remain(self, chain):
        merged = coalesce_versions(chain)
        for left, right in zip(merged, merged[1:]):
            if left.interval.meets(right.interval):
                assert left.value != right.value

    @given(_chains())
    def test_total_span_preserved(self, chain):
        merged = coalesce_versions(chain)
        if chain:
            assert merged[0].interval.begin == chain[0].interval.begin
            assert merged[-1].interval.end == chain[-1].interval.end
