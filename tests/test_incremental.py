"""Incremental (delta) continuous-query evaluation: watermarks, analysis,
and the differential guarantee that the delta path is byte-identical to a
full re-evaluation on both backends."""

import random
from datetime import datetime, timedelta

import pytest

from repro import Strategy, TagStructure, XCQLEngine
from repro.core.pipeline import analyze_delta
from repro.dom import parse_document
from repro.dom.serializer import serialize
from repro.fragments.model import Filler
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import QueryScheduler
from repro.temporal import XSDateTime

SENSOR_STRUCTURE_XML = """
<stream:structure>
  <tag type="snapshot" id="1" name="log">
    <tag type="event" id="2" name="txn">
      <tag type="snapshot" id="4" name="amount"/>
    </tag>
    <tag type="temporal" id="3" name="limit"/>
  </tag>
</stream:structure>
"""

EVENT_QUERY = (
    'for $t in stream("s")//txn where $t/amount > 50 '
    "return <hit>{$t/amount/text()}</hit>"
)
LIMIT_QUERY = (
    'for $l in stream("s")//limit where $l > 50 '
    "return <big>{$l/text()}</big>"
)

_BASE = datetime(2003, 1, 1)


def stamp(hours: int) -> XSDateTime:
    return XSDateTime.parse(
        (_BASE + timedelta(hours=hours)).strftime("%Y-%m-%dT%H:%M:%S")
    )


def txn(filler_id: int, hours: int, amount: int) -> Filler:
    content = parse_document(
        f'<txn seq="{filler_id}.{hours}"><amount>{amount}</amount></txn>'
    ).document_element
    return Filler(filler_id, 2, stamp(hours), content)


def limit(filler_id: int, hours: int, value: int) -> Filler:
    content = parse_document(f"<limit>{value}</limit>").document_element
    return Filler(filler_id, 3, stamp(hours), content)


def make_engine() -> XCQLEngine:
    engine = XCQLEngine()
    engine.register_stream("s", TagStructure.from_xml(SENSOR_STRUCTURE_XML))
    return engine


def normalized(items) -> list[str]:
    return sorted(serialize(item) for item in items)


class Rig:
    """Three views of one arrival sequence: incremental, full, interpreted.

    Each query runs on its own engine so the incremental path cannot lean
    on state the full evaluation produced (separate stores, separate plan
    caches, separate wrapper caches).
    """

    def __init__(self, source: str):
        self.engines = [make_engine(), make_engine(), make_engine()]
        self.incremental = ContinuousQuery(
            self.engines[0], source, strategy=Strategy.QAC_PLUS, incremental=True
        )
        self.full = ContinuousQuery(
            self.engines[1], source, strategy=Strategy.QAC_PLUS, incremental=False
        )
        self.interpreted = ContinuousQuery(
            self.engines[2],
            source,
            strategy=Strategy.QAC_PLUS,
            incremental=False,
            backend="interpreted",
        )
        self.queries = [self.incremental, self.full, self.interpreted]
        self.emitted: dict[ContinuousQuery, list[str]] = {q: [] for q in self.queries}
        for query in self.queries:
            query.subscribe(
                lambda items, q=query: self.emitted[q].extend(
                    serialize(i) for i in items
                )
            )

    def feed(self, fillers) -> None:
        for engine in self.engines:
            # Fresh Filler objects per engine: stores must not share state.
            engine.feed("s", [Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                              for f in fillers])

    def tick(self, now: XSDateTime) -> None:
        for query in self.queries:
            query.evaluate(now)

    def assert_identical(self) -> None:
        reference = normalized(self.interpreted.last_result)
        assert normalized(self.incremental.last_result) == reference
        assert normalized(self.full.last_result) == reference
        assert sorted(self.emitted[self.incremental]) == sorted(self.emitted[self.full])
        assert sorted(self.emitted[self.incremental]) == sorted(
            self.emitted[self.interpreted]
        )


class TestStoreWatermarks:
    def test_seq_advances_per_accepted_filler(self):
        engine = make_engine()
        store = engine.stores["s"]
        assert store.seq == 0
        engine.feed("s", [txn(1, 0, 10), txn(2, 1, 20)])
        assert store.seq == 2
        engine.feed("s", [txn(1, 0, 10)])  # exact duplicate: dropped
        assert store.seq == 2

    def test_fillers_since_slices_and_filters(self):
        engine = make_engine()
        store = engine.stores["s"]
        engine.feed("s", [txn(1, 0, 10), limit(9, 1, 100), txn(2, 2, 20)])
        assert [f.filler_id for f in store.fillers_since(0)] == [1, 9, 2]
        assert [f.filler_id for f in store.fillers_since(1)] == [9, 2]
        assert [f.filler_id for f in store.fillers_since(1, tsid=2)] == [2]
        assert store.fillers_since(store.seq) == []

    def test_tsid_watermark(self):
        engine = make_engine()
        store = engine.stores["s"]
        assert store.tsid_watermark(2) == 0
        engine.feed("s", [txn(1, 0, 10), limit(9, 1, 100)])
        assert store.tsid_watermark(2) == 1
        assert store.tsid_watermark(3) == 2

    def test_mutation_epoch_stable_under_appends(self):
        engine = make_engine()
        store = engine.stores["s"]
        epoch = store.mutation_epoch
        engine.feed("s", [txn(1, 0, 10)])
        assert store.mutation_epoch == epoch

    def test_mutation_epoch_bumps_on_history_rewrites(self):
        engine = make_engine()
        store = engine.stores["s"]
        engine.feed("s", [txn(1, 0, 10), txn(2, 1, 20)])
        epoch = store.mutation_epoch
        store.prune_before(stamp(5))
        assert store.mutation_epoch == epoch + 1
        store.clear()
        assert store.mutation_epoch == epoch + 2
        store.set_tag_structure(TagStructure.from_xml(SENSOR_STRUCTURE_XML))
        assert store.mutation_epoch == epoch + 3

    def test_seq_not_rewound_by_clear(self):
        engine = make_engine()
        store = engine.stores["s"]
        engine.feed("s", [txn(1, 0, 10), txn(2, 1, 20)])
        store.clear()
        assert store.seq == 2
        engine.feed("s", [txn(3, 2, 30)])
        assert store.seq == 3
        assert [f.filler_id for f in store.fillers_since(2)] == [3]

    def test_delta_wrappers_match_get_fillers_for_new_ids(self):
        engine = make_engine()
        store = engine.stores["s"]
        batch = [txn(7, 3, 55), txn(7, 1, 44), txn(8, 2, 66)]
        engine.feed("s", batch)
        wrappers = store.delta_wrappers(store.fillers_since(0))
        assert [serialize(w) for w in wrappers] == [
            serialize(store.get_fillers(7)),
            serialize(store.get_fillers(8)),
        ]


class TestDeltaAnalysis:
    def compiled(self, source: str, strategy=Strategy.QAC_PLUS):
        return make_engine().compile(source, strategy)

    def test_event_flwor_is_delta_safe(self):
        analysis = analyze_delta(self.compiled(EVENT_QUERY).translated)
        assert analysis.safe
        assert analysis.stream == "s"
        assert analysis.tsid == 2
        assert analysis.binds_versions

    def test_tuple_local_aggregate_is_safe(self):
        source = (
            'for $t in stream("s")//txn where count($t/amount) > 0 '
            "return <n>{sum($t/amount)}</n>"
        )
        assert analyze_delta(self.compiled(source).translated).safe

    def test_aggregate_over_driving_sequence_is_full_only(self):
        analysis = analyze_delta(
            self.compiled('count(stream("s")//txn)').translated
        )
        assert not analysis.safe
        assert "FLWOR" in analysis.reason

    def test_order_by_is_full_only(self):
        source = (
            'for $t in stream("s")//txn order by $t/amount '
            "return $t/amount"
        )
        analysis = analyze_delta(self.compiled(source).translated)
        assert not analysis.safe
        assert "order" in analysis.reason

    def test_now_window_is_full_only(self):
        source = (
            'for $t in stream("s")//txn?[now-PT1H, now] return $t/amount'
        )
        analysis = analyze_delta(self.compiled(source).translated)
        assert not analysis.safe

    def test_version_projection_is_full_only(self):
        source = 'for $t in stream("s")//txn#[1, 2] return $t/amount'
        analysis = analyze_delta(self.compiled(source).translated)
        assert not analysis.safe

    def test_qac_hole_chasing_is_full_only(self):
        analysis = analyze_delta(self.compiled(EVENT_QUERY, Strategy.QAC).translated)
        assert not analysis.safe

    def test_positional_predicate_on_driver_is_full_only(self):
        source = 'for $t in stream("s")//txn[1] return $t/amount'
        analysis = analyze_delta(self.compiled(source).translated)
        assert not analysis.safe
        assert "positional" in analysis.reason

    def test_interpreted_backend_has_no_delta_plan(self):
        engine = make_engine()
        compiled = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS, backend="interpreted")
        assert engine.prepare_delta(compiled) is None
        assert "interpreted" in compiled.delta_reason

    def test_explain_reports_delta_verdict(self):
        engine = make_engine()
        assert engine.explain(EVENT_QUERY, Strategy.QAC_PLUS)["delta_safe"] is True
        plan = engine.explain('count(stream("s")//txn)', Strategy.QAC_PLUS)
        assert plan["delta_safe"] is False
        assert plan["delta_reason"]


class TestDeltaDifferential:
    def test_in_order_new_ids_exact_and_incremental(self):
        rig = Rig(EVENT_QUERY)
        rig.feed([txn(i, i, 40 + i * 10) for i in range(4)])
        rig.tick(stamp(10))
        for round_no in range(5):
            rig.feed([txn(10 + round_no, 20 + round_no, 55 + round_no)])
            rig.tick(stamp(30 + round_no))
            # In-order fresh ids keep even the list order identical.
            assert [serialize(i) for i in rig.incremental.last_result] == [
                serialize(i) for i in rig.full.last_result
            ]
        rig.assert_identical()
        assert rig.incremental.delta_runs == 5
        assert rig.incremental.full_runs == 1

    def test_random_arrival_orders(self):
        rng = random.Random(42)
        arrivals = [txn(i, i % 17, rng.randrange(0, 120)) for i in range(40)]
        # Shared event holes: several events reuse one filler id.
        arrivals += [txn(100, 5 + i, rng.randrange(0, 120)) for i in range(6)]
        rng.shuffle(arrivals)
        rig = Rig(EVENT_QUERY)
        hour = 50
        while arrivals:
            batch, arrivals = arrivals[: rng.randrange(1, 5)], arrivals[4:]
            rig.feed(batch)
            hour += 1
            rig.tick(stamp(hour))
            rig.assert_identical()
        assert rig.incremental.delta_runs > 0

    def test_shared_event_hole_stays_on_delta_path(self):
        rig = Rig(EVENT_QUERY)
        rig.feed([txn(1, 0, 80)])
        rig.tick(stamp(10))
        rig.feed([txn(1, 1, 90)])  # same filler id, second event version
        rig.tick(stamp(11))
        rig.assert_identical()
        assert rig.incremental.last_mode == "delta"

    def test_update_heavy_temporal_closures_fall_back(self):
        """A new limit version closes the old version's vtTo: full rerun."""
        rig = Rig(LIMIT_QUERY)
        rig.feed([limit(1, 0, 100), limit(2, 0, 40)])
        rig.tick(stamp(10))
        for round_no in range(4):
            rig.feed([limit(1, 20 + round_no, 60 + round_no)])
            rig.tick(stamp(40 + round_no))
            rig.assert_identical()
        # Every post-baseline run re-scanned: versions of existing
        # temporal fragments mutate retained annotations.
        assert rig.incremental.delta_runs == 0
        assert rig.incremental.full_runs == 5

    def test_fresh_temporal_ids_stay_on_delta_path(self):
        rig = Rig(LIMIT_QUERY)
        rig.feed([limit(1, 0, 100)])
        rig.tick(stamp(10))
        rig.feed([limit(2, 1, 70), limit(3, 2, 30)])
        rig.tick(stamp(11))
        rig.assert_identical()
        assert rig.incremental.last_mode == "delta"

    def test_prune_forces_full_resync(self):
        rig = Rig(EVENT_QUERY)
        rig.feed([txn(i, i, 60 + i) for i in range(6)])
        rig.tick(stamp(10))
        rig.feed([txn(10, 12, 99)])
        rig.tick(stamp(13))
        assert rig.incremental.last_mode == "delta"
        for engine in rig.engines:
            engine.stores["s"].prune_before(stamp(3))
        rig.tick(stamp(20))
        assert rig.incremental.last_mode == "full"
        rig.assert_identical()
        # And the delta path resumes once resynchronized.
        rig.feed([txn(11, 21, 77)])
        rig.tick(stamp(22))
        assert rig.incremental.last_mode == "delta"
        rig.assert_identical()

    def test_no_arrivals_trivial_delta(self):
        rig = Rig(EVENT_QUERY)
        rig.feed([txn(1, 0, 80)])
        rig.tick(stamp(10))
        rig.tick(stamp(11))
        assert rig.incremental.last_mode == "delta"
        rig.assert_identical()

    def test_full_only_query_unaffected_by_incremental_flag(self):
        rig = Rig('for $t in stream("s")//txn order by $t/amount return $t/amount')
        rig.feed([txn(i, i, 90 - i) for i in range(5)])
        rig.tick(stamp(10))
        rig.feed([txn(9, 20, 45)])
        rig.tick(stamp(21))
        assert rig.incremental.delta_runs == 0
        reference = [serialize(i) for i in rig.interpreted.last_result]
        assert [serialize(i) for i in rig.incremental.last_result] == reference


class TestSeenCap:
    def test_eviction_is_oldest_first_and_counted(self):
        engine = make_engine()
        query = ContinuousQuery(
            engine, EVENT_QUERY, strategy=Strategy.QAC_PLUS, seen_cap=2
        )
        engine.feed("s", [txn(i, i, 60 + i) for i in range(5)])
        query.evaluate(stamp(10))
        stats = query.stats()
        assert stats["seen_size"] == 2
        assert stats["seen_evictions"] == 3
        assert stats["emitted"] == 5

    def test_evicted_identity_re_emits(self):
        engine = make_engine()
        query = ContinuousQuery(
            engine, EVENT_QUERY, strategy=Strategy.QAC_PLUS, seen_cap=1
        )
        engine.feed("s", [txn(1, 0, 80)])
        assert len(query.evaluate(stamp(1))) == 1
        engine.feed("s", [txn(2, 1, 90)])  # evicts <hit>80</hit>
        assert len(query.evaluate(stamp(2))) == 1
        # The same answer re-appears via a new event with identical content:
        # its identity was evicted, so it is emitted again.
        engine.feed("s", [txn(3, 2, 80)])
        emitted = query.evaluate(stamp(3))
        assert [serialize(i) for i in emitted] == ["<hit>80</hit>"]

    def test_unbounded_by_default(self):
        engine = make_engine()
        query = ContinuousQuery(engine, EVENT_QUERY, strategy=Strategy.QAC_PLUS)
        engine.feed("s", [txn(i, i, 60 + i) for i in range(5)])
        query.evaluate(stamp(10))
        assert query.stats()["seen_size"] == 5
        assert query.stats()["seen_evictions"] == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ContinuousQuery(make_engine(), EVENT_QUERY, seen_cap=0)


class TestAutomaticArrivalWiring:
    def test_feed_notifies_watching_scheduler(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        query = ContinuousQuery(engine, EVENT_QUERY, strategy=Strategy.QAC_PLUS)
        scheduler.add(query)
        scheduler.poll(stamp(1))
        # No manual notify_arrival: feed() itself announces the batch.
        engine.feed("s", [txn(1, 0, 80)])
        scheduler.poll(stamp(2))
        assert scheduler.total_evaluations == 2
        assert scheduler.total_skips == 0
        scheduler.poll(stamp(3))
        assert scheduler.total_skips == 1

    def test_unwatch_stops_notifications(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        query = ContinuousQuery(engine, EVENT_QUERY, strategy=Strategy.QAC_PLUS)
        scheduler.add(query)
        scheduler.poll(stamp(1))
        scheduler.unwatch_engine(engine)
        engine.feed("s", [txn(1, 0, 80)])
        scheduler.poll(stamp(2))
        assert scheduler.total_skips == 1

    def test_scheduler_records_delta_vs_full_vs_skip(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        query = ContinuousQuery(engine, EVENT_QUERY, strategy=Strategy.QAC_PLUS)
        scheduler.add(query)
        engine.feed("s", [txn(1, 0, 80)])
        scheduler.poll(stamp(1))   # first run: full baseline
        engine.feed("s", [txn(2, 1, 90)])
        scheduler.poll(stamp(2))   # delta
        scheduler.poll(stamp(3))   # skip (no arrivals)
        stats = scheduler.stats()
        assert stats["full_runs"] == 1
        assert stats["delta_runs"] == 1
        assert stats["skips"] == 1
        per_query = stats["queries"][0]
        assert per_query["delta_runs"] == 1
        assert per_query["full_runs"] == 1
