"""Shared multi-query evaluation and predicate routing (PR 4 / ablation A11).

Three layers of guarantees:

- **Analysis**: `analyze_shared` splits delta-safe plans into a shared
  prefix and a per-query residual, groups equal prefixes, and extracts
  routable predicates exactly when sound.
- **Execution**: prefix-then-residual equals the solo delta plan equals a
  fresh full evaluation, byte for byte.
- **Differential**: a scheduler with sharing + routing enabled emits and
  retains byte-identical results to a solo-delta scheduler and to an
  interpreted-backend re-evaluation, across random arrival orders, group
  membership churn, and prune/epoch fallbacks.
"""

from __future__ import annotations

import random
from datetime import datetime, timedelta

from repro.core.engine import XCQLEngine
from repro.core.optimizer import DELTA_VAR, SHARED_VAR
from repro.core.pipeline import analyze_shared
from repro.core.translator import Strategy
from repro.dom.parser import parse_document
from repro.dom.serializer import serialize
from repro.fragments.model import Filler
from repro.fragments.tagstructure import TagStructure
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import QueryScheduler
from repro.temporal.chrono import XSDateTime
from repro.xquery import xast

STRUCTURE_XML = """
<stream:structure>
  <tag type="snapshot" id="1" name="log">
    <tag type="event" id="2" name="txn">
      <tag type="snapshot" id="4" name="amount"/>
    </tag>
    <tag type="temporal" id="3" name="limit"/>
  </tag>
</stream:structure>
"""

EVENT_QUERY = (
    'for $t in stream("s")//txn where $t/amount > 50 '
    "return <hit>{$t/amount/text()}</hit>"
)
LIMIT_QUERY = (
    'for $l in stream("s")//limit where $l > 50 '
    "return <big>{$l/text()}</big>"
)

_BASE = datetime(2003, 1, 1)


def stamp(hours: int) -> XSDateTime:
    return XSDateTime.parse(
        (_BASE + timedelta(hours=hours)).strftime("%Y-%m-%dT%H:%M:%S")
    )


def txn(filler_id: int, hours: int, amount: int) -> Filler:
    content = parse_document(
        f'<txn seq="{filler_id}.{hours}"><amount>{amount}</amount></txn>'
    ).document_element
    return Filler(filler_id, 2, stamp(hours), content)


def limit(filler_id: int, hours: int, value: int) -> Filler:
    content = parse_document(f"<limit>{value}</limit>").document_element
    return Filler(filler_id, 3, stamp(hours), content)


def make_engine() -> XCQLEngine:
    engine = XCQLEngine()
    engine.register_stream("s", TagStructure.from_xml(STRUCTURE_XML))
    return engine


def normalized(items) -> list[str]:
    return sorted(serialize(item) for item in items)


def shared_of(source: str, strategy: Strategy = Strategy.QAC_PLUS):
    engine = make_engine()
    compiled = engine.compile(source, strategy)
    return analyze_shared(compiled.translated)


class TestSharedAnalysis:
    def test_split_shape(self):
        analysis = shared_of(EVENT_QUERY)
        assert analysis.safe
        assert DELTA_VAR in xast.to_source(analysis.prefix_expr)
        body = analysis.residual_module.body
        assert isinstance(body, xast.FLWOR)
        driver = body.clauses[0]
        assert isinstance(driver, xast.ForClause)
        assert isinstance(driver.expr, xast.VarRef)
        assert driver.expr.name == SHARED_VAR
        # The residual keeps the where clause and the return body.
        assert any(isinstance(c, xast.WhereClause) for c in body.clauses[1:])

    def test_group_key_equal_for_same_prefix(self):
        keys = {
            shared_of(
                f'for $t in stream("s")//txn where $t/amount > {k} '
                "return <hit>{$t/amount/text()}</hit>"
            ).group_key
            for k in (10, 50, 90)
        }
        assert len(keys) == 1

    def test_group_key_distinct_per_prefix(self):
        assert shared_of(EVENT_QUERY).group_key != shared_of(LIMIT_QUERY).group_key

    def test_routing_child_path(self):
        routing = shared_of(EVENT_QUERY).routing
        assert routing is not None
        assert routing.tuple_tag == "txn"
        assert routing.path == ("amount",)
        assert routing.attribute is None
        assert routing.op == ">"
        assert routing.value == 50.0
        assert routing.numeric

    def test_routing_empty_path(self):
        routing = shared_of(LIMIT_QUERY).routing
        assert routing is not None
        assert routing.tuple_tag == "limit"
        assert routing.path == ()
        assert routing.op == ">"

    def test_routing_flipped_literal(self):
        routing = shared_of(
            'for $t in stream("s")//txn where 50 < $t/amount '
            "return <hit>{$t/amount/text()}</hit>"
        ).routing
        assert routing is not None
        assert routing.op == ">"
        assert routing.value == 50.0

    def test_routing_text_step_string_literal(self):
        routing = shared_of(
            'for $t in stream("s")//txn where $t/amount/text() = "75" '
            "return <hit>ok</hit>"
        ).routing
        assert routing is not None
        assert routing.text_only
        assert routing.op == "="
        assert routing.value == "75"
        assert not routing.numeric

    def test_routing_vtfrom_datetime(self):
        routing = shared_of(
            'for $t in stream("s")//txn where $t/@vtFrom > 2003-01-01T05:00:00 '
            "return <hit>ok</hit>"
        ).routing
        assert routing is not None
        assert routing.attribute == "vtFrom"
        assert routing.numeric
        assert routing.value == XSDateTime.parse("2003-01-01T05:00:00").to_epoch_seconds()

    def test_complex_predicate_shares_without_routing(self):
        analysis = shared_of(
            'for $t in stream("s")//txn where $t/amount + 1 > 50 '
            "return <hit>ok</hit>"
        )
        assert analysis.safe
        assert analysis.routing is None

    def test_unsafe_query_not_shared(self):
        engine = make_engine()
        compiled = engine.compile('count(stream("s")//txn)', Strategy.QAC_PLUS)
        assert engine.prepare_shared(compiled) is None
        assert compiled.shared_reason


class TestEngineSharedExecution:
    def test_prefix_plus_residual_equals_delta_and_direct(self):
        engine = make_engine()
        compiled = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS)
        shared = engine.prepare_shared(compiled)
        assert shared is not None
        engine.feed("s", [txn(100 + i, i, 30 + i * 10) for i in range(6)])
        store = engine.stores["s"]
        _, wrappers = store.delta_batch(0, tsid=shared.tsid,
                                        filler_id=shared.filler_id)
        tuples = engine.execute_shared_prefix(shared, wrappers)
        via_shared = engine.execute_shared_residual(shared, tuples)
        delta = engine.prepare_delta(compiled)
        via_delta = engine.execute_delta(delta, wrappers)
        direct = engine.execute(EVENT_QUERY, Strategy.QAC_PLUS)
        assert [serialize(x) for x in via_shared] == [serialize(x) for x in via_delta]
        assert normalized(via_shared) == normalized(direct)

    def test_explain_reports_sharing(self):
        engine = make_engine()
        plan = engine.explain(EVENT_QUERY, Strategy.QAC_PLUS)
        assert plan["shared_safe"]
        assert plan["shared_group"] is not None
        assert plan["routing_predicate"] == "txn[amount > 50.0]"

    def test_delta_batch_memoized(self):
        engine = make_engine()
        engine.feed("s", [txn(100, 0, 10), txn(101, 1, 20)])
        store = engine.stores["s"]
        first = store.delta_batch(0, tsid=2)
        second = store.delta_batch(0, tsid=2)
        assert first[1] is second[1]  # the memo returns the same batch
        info = store.delta_memo_info()
        assert info["hits"] == 1 and info["misses"] == 1
        engine.feed("s", [txn(102, 2, 30)])
        third = store.delta_batch(0, tsid=2)
        assert third[1] is not second[1]  # new seq invalidates
        assert len(third[0]) == 3


class ShareRig:
    """Three arms over one arrival sequence.

    ``shared``: one engine, one scheduler with grouping + routing on.
    ``solo``: one engine, one scheduler with both off (PR-3 behaviour).
    ``interp``: one engine, interpreted backend, evaluated directly.
    Every arm sees fresh copies of the same fillers.
    """

    def __init__(self, sources: list[str]):
        self.sources = sources
        self.engines = [make_engine(), make_engine(), make_engine()]
        self.shared_sched = QueryScheduler(self.engines[0],
                                           share_groups=True, routing=True)
        self.solo_sched = QueryScheduler(self.engines[1],
                                         share_groups=False, routing=False)
        self.shared_queries = []
        self.solo_queries = []
        self.interp_queries = []
        for source in sources:
            shared_q = ContinuousQuery(self.engines[0], source, Strategy.QAC_PLUS)
            solo_q = ContinuousQuery(self.engines[1], source, Strategy.QAC_PLUS)
            interp_q = ContinuousQuery(self.engines[2], source, Strategy.QAC_PLUS,
                                       incremental=False, backend="interpreted")
            self.shared_sched.add(shared_q)
            self.solo_sched.add(solo_q)
            self.shared_queries.append(shared_q)
            self.solo_queries.append(solo_q)
            self.interp_queries.append(interp_q)
        self.emitted = {id(q): [] for q in
                        self.shared_queries + self.solo_queries + self.interp_queries}
        for query in (self.shared_queries + self.solo_queries +
                      self.interp_queries):
            query.subscribe(lambda items, q=query: self.emitted[id(q)].extend(
                serialize(i) for i in items))

    def feed(self, fillers) -> None:
        for engine in self.engines:
            engine.feed("s", [
                Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                for f in fillers
            ])

    def tick(self, now: XSDateTime) -> None:
        self.shared_sched.poll(now)
        self.solo_sched.poll(now)
        for query in self.interp_queries:
            query.evaluate(now)

    def assert_identical(self) -> None:
        for shared_q, solo_q, interp_q in zip(
            self.shared_queries, self.solo_queries, self.interp_queries
        ):
            reference = normalized(interp_q.last_result)
            assert normalized(shared_q.last_result) == reference, shared_q.source
            assert normalized(solo_q.last_result) == reference, solo_q.source
            assert sorted(self.emitted[id(shared_q)]) == sorted(
                self.emitted[id(solo_q)]
            ), shared_q.source
            assert sorted(self.emitted[id(shared_q)]) == sorted(
                self.emitted[id(interp_q)]
            ), shared_q.source


def _query_mix() -> list[str]:
    sources = [
        f'for $t in stream("s")//txn where $t/amount > {k} '
        "return <hit>{$t/amount/text()}</hit>"
        for k in (10, 40, 70, 100, 500)
    ]
    sources.append(
        'for $t in stream("s")//txn where $t/amount/text() = "75" '
        "return <eq>{$t/amount/text()}</eq>"
    )
    sources.append(LIMIT_QUERY)
    return sources


def _random_batches(rng: random.Random, ticks: int) -> list[list[Filler]]:
    batches = []
    next_id = 100
    hour = 0
    for _ in range(ticks):
        batch = []
        for _ in range(rng.randint(0, 5)):
            hour += 1
            if rng.random() < 0.8:
                # Events may reuse a filler id (shared event holes stay
                # on the delta path); fresh ids otherwise.
                filler_id = rng.choice([next_id, 7]) if rng.random() < 0.3 else next_id
                batch.append(txn(filler_id, hour, rng.randrange(0, 130)))
            else:
                batch.append(limit(next_id, hour, rng.randrange(0, 130)))
            next_id += 1
        rng.shuffle(batch)
        batches.append(batch)
    return batches


class TestSharedDifferential:
    def test_random_arrival_orders(self):
        for seed in (0, 1, 2):
            rng = random.Random(seed)
            rig = ShareRig(_query_mix())
            now = stamp(0)
            rig.tick(now)  # baseline
            for i, batch in enumerate(_random_batches(rng, 12)):
                rig.feed(batch)
                rig.tick(stamp(i + 1))
                rig.assert_identical()
            stats = rig.shared_sched.stats()
            assert stats["shared_runs"] > 0, "grouping never engaged"
            assert stats["routing"]["skips"] > 0, "routing never skipped"
            assert stats["shared_prefix"]["reuses"] > 0

    def test_membership_churn(self):
        rng = random.Random(7)
        rig = ShareRig(_query_mix())
        now = stamp(0)
        rig.tick(now)
        batches = _random_batches(rng, 10)
        dropped = None
        for i, batch in enumerate(batches):
            if i == 3:
                # Drop one group member mid-stream from both scheduler arms.
                dropped = rig.shared_queries[1], rig.solo_queries[1]
                assert rig.shared_sched.remove(dropped[0])
                assert rig.solo_sched.remove(dropped[1])
            if i == 6:
                # Re-admit it; its watermark is stale, the next run catches up.
                rig.shared_sched.add(dropped[0])
                rig.solo_sched.add(dropped[1])
                dropped = None
            rig.feed(batch)
            rig.tick(stamp(i + 1))
            for j, (shared_q, solo_q, interp_q) in enumerate(zip(
                rig.shared_queries, rig.solo_queries, rig.interp_queries
            )):
                if dropped is not None and j == 1:
                    continue  # not being polled; compared after re-add
                reference = normalized(interp_q.last_result)
                assert normalized(shared_q.last_result) == reference
                assert normalized(solo_q.last_result) == reference
        rig.tick(stamp(len(batches) + 1))
        rig.assert_identical()
        assert rig.shared_sched.stats()["shared_runs"] > 0

    def test_prune_epoch_fallback(self):
        rng = random.Random(11)
        rig = ShareRig(_query_mix())
        rig.tick(stamp(0))
        batches = _random_batches(rng, 8)
        for i, batch in enumerate(batches):
            if i == 4:
                # History rewrite: every arm prunes, epochs move, retained
                # state is discarded and rebuilt by a full run.
                for engine in rig.engines:
                    engine.stores["s"].prune_before(stamp(3))
            rig.feed(batch)
            rig.tick(stamp(i + 1))
            for shared_q, solo_q, interp_q in zip(
                rig.shared_queries, rig.solo_queries, rig.interp_queries
            ):
                reference = normalized(interp_q.last_result)
                assert normalized(shared_q.last_result) == reference
                assert normalized(solo_q.last_result) == reference
        assert rig.shared_sched.stats()["full_runs"] > len(rig.shared_queries)

    def test_routing_skip_preserves_catchup(self):
        """A routed skip leaves the watermark put; the next wake folds in
        both the skipped and the new fillers."""
        engine = make_engine()
        sched = QueryScheduler(engine)
        query = ContinuousQuery(engine, EVENT_QUERY, Strategy.QAC_PLUS)
        sched.add(query)
        sched.poll(stamp(0))
        engine.feed("s", [txn(100, 1, 10)])  # amount 10: cannot match > 50
        sched.poll(stamp(1))
        assert query.skips == 1
        assert sched.stats()["routing"]["skips"] == 1
        engine.feed("s", [txn(101, 2, 90)])  # matches — wakes the query
        sched.poll(stamp(2))
        assert normalized(query.last_result) == normalized(
            engine.execute(EVENT_QUERY, Strategy.QAC_PLUS)
        )

    def test_temporal_supersede_wakes_despite_predicate_miss(self):
        """A new version of a temporal fragment must wake its routed
        queries even when its value cannot match: the arrival closes the
        previous version's open ``vtTo``, so retained annotations move."""
        source = 'for $l in stream("s")//limit where $l > 50 return $l'
        engine = make_engine()
        sched = QueryScheduler(engine)
        query = ContinuousQuery(engine, source, Strategy.QAC_PLUS)
        sched.add(query)
        sched.poll(stamp(0))
        engine.feed("s", [limit(7, 1, 80)])  # matches: vtTo="now"
        sched.poll(stamp(1))
        assert 'vtTo="now"' in serialize(query.last_result[0])
        # Value 10 fails "> 50" — but it supersedes version 80.
        engine.feed("s", [limit(7, 2, 10)])
        sched.poll(stamp(2))
        assert normalized(query.last_result) == normalized(
            engine.execute(source, Strategy.QAC_PLUS)
        )
        assert f'vtTo="{stamp(2)}"' in serialize(query.last_result[0])
        # A predicate miss on a *fresh* temporal id still skips.
        engine.feed("s", [limit(8, 3, 5)])
        sched.poll(stamp(3))
        assert sched.stats()["routing"]["skips"] == 1


class TestPushRuntimeRouting:
    """The channel ingest path hands each filler to the routing index."""

    def _rig(self):
        from repro.streams.client import StreamClient
        from repro.streams.clock import SimulatedClock
        from repro.streams.server import StreamServer
        from repro.streams.transport import Channel

        clock = SimulatedClock(stamp(0))
        channel = Channel()
        server = StreamServer(
            "s", TagStructure.from_xml(STRUCTURE_XML), channel, clock
        )
        client = StreamClient(clock, scheduler=QueryScheduler())
        client.tune_in(channel)
        server.announce()
        server.publish_document(parse_document("<log/>").document_element)
        return clock, server, client

    def test_channel_arrivals_are_probed_and_skipped(self):
        clock, server, client = self._rig()
        query = client.register_query(EVENT_QUERY, strategy=Strategy.QAC_PLUS)
        emitted: list = []
        query.subscribe(emitted.extend)
        client.poll()
        for amount in (10, 60, 20, 90, 30):
            clock.advance("PT1H")
            server.emit_event(
                0,
                parse_document(
                    f"<txn><amount>{amount}</amount></txn>"
                ).document_element,
            )
            client.poll()
        assert sorted(serialize(e) for e in emitted) == [
            "<hit>60</hit>",
            "<hit>90</hit>",
        ]
        stats = client.scheduler.stats()
        assert stats["routing"]["registered"] == 1
        assert stats["routing"]["skips"] == 3  # amounts 10, 20, 30
        assert stats["routing"]["wakes"] == 2  # amounts 60, 90
        assert normalized(query.last_result) == normalized(
            client.engine.execute(EVENT_QUERY, Strategy.QAC_PLUS)
        )
