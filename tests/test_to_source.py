"""Tests for AST source rendering (repro.xquery.xast.to_source)."""

import pytest

from repro.xquery import parse, parse_expression, to_source
from repro.xquery import xast


def render(source: str, xcql: bool = True) -> str:
    return to_source(parse(source, xcql=xcql))


class TestRendering:
    def test_module_with_functions(self):
        out = render("define function f($x as xs:integer) as xs:integer { $x } f(1)")
        assert out.startswith("define function f($x as xs:integer) as xs:integer")
        assert out.endswith("f(1)")

    def test_flwor_multiline(self):
        out = render("for $x at $i in (1, 2) where $x > 1 order by $x descending return $x")
        assert "for $x at $i in" in out
        assert "order by $x descending" in out

    def test_parenthesization_preserves_structure(self):
        # Right-associated subtraction must not silently re-associate.
        expr = xast.BinOp("-", xast.Literal(1), xast.BinOp("-", xast.Literal(2), xast.Literal(3)))
        out = to_source(expr)
        assert out == "1 - (2 - 3)"
        reparsed = parse_expression(out)
        assert to_source(reparsed) == out

    def test_unary_parenthesization(self):
        expr = xast.UnaryOp("-", xast.BinOp("+", xast.Literal(1), xast.Literal(2)))
        assert to_source(expr) == "-(1 + 2)"

    def test_string_escaping(self):
        assert to_source(xast.Literal('say "hi"')) == '"say ""hi"""'

    def test_boolean_literals(self):
        assert to_source(xast.Literal(True)) == "true()"
        assert to_source(xast.Literal(False)) == "false()"

    def test_direct_constructor(self):
        out = render('<a x="1" y="{$v}">text{ $v }</a>')
        assert out == '<a x="1" y="{$v}">text{ $v }</a>'

    def test_empty_direct_constructor(self):
        assert render("<a/>") == "<a/>"

    def test_computed_constructors(self):
        assert render("element {name($e)} { $e }") == "element {name($e)} { $e }"
        assert render('attribute id { "x" }') == 'attribute id { "x" }'
        assert render('text { "t" }') == 'text { "t" }'

    def test_projections(self):
        assert render("$a?[now, now]") == "$a?[now, now]"
        assert render("$a#[1, 2]") == "$a#[1, 2]"

    def test_quantified(self):
        assert render("some $x in (1, 2) satisfies $x = 2") == (
            "some $x in (1, 2) satisfies $x = 2"
        )

    def test_relative_paths(self):
        assert render("a/b/@c") == "a/b/@c"
        assert render("./x") == "./x"
        assert render("..") == ".."
        assert render("@id") == "@id"

    def test_predicates(self):
        assert render('$a/b[c = "1"][2]') == '$a/b[c = "1"][2]'

    def test_instance_and_cast(self):
        assert render("1 instance of xs:integer") == "1 instance of xs:integer"
        assert render('"5" cast as xs:integer') == '"5" cast as xs:integer'

    def test_interval_comparison(self):
        assert render("$a before $b") == "$a before $b"

    def test_empty_sequence(self):
        assert render("()") == "()"
