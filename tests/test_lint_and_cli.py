"""Tests for the XCQL linter and the command-line entry points."""

import pytest

from repro.core.lint import Diagnostic, lint_query
from repro.cli import figure4_main, xcql_main, xmlgen_main
from repro.fragments.persist import save_store


class TestLinter:
    def codes(self, source, credit_structure):
        return [d.code for d in lint_query(source, {"credit": credit_structure})]

    def test_clean_query(self, credit_structure):
        assert self.codes(
            'for $a in stream("credit")//account return $a/creditLimit?[now]',
            credit_structure,
        ) == []

    def test_syntax_error(self, credit_structure):
        assert self.codes("for $x in", credit_structure) == ["syntax-error"]

    def test_unknown_stream(self, credit_structure):
        codes = self.codes('stream("nope")//account', credit_structure)
        assert "unknown-stream" in codes

    def test_unknown_path(self, credit_structure):
        codes = self.codes('stream("credit")//bogus', credit_structure)
        assert "unknown-path" in codes

    def test_projection_on_snapshot(self, credit_structure):
        codes = self.codes(
            'stream("credit")//account/customer?[now]', credit_structure
        )
        assert "projection-on-snapshot" in codes

    def test_version_projection_on_snapshot(self, credit_structure):
        codes = self.codes(
            'stream("credit")//account/customer#[1]', credit_structure
        )
        assert "projection-on-snapshot" in codes

    def test_event_version_range_informational(self, credit_structure):
        codes = self.codes(
            'stream("credit")//transaction#[1, 10]', credit_structure
        )
        assert "event-version-range" in codes

    def test_temporal_projection_not_flagged(self, credit_structure):
        codes = self.codes(
            'stream("credit")//account/creditLimit#[last]', credit_structure
        )
        assert codes == []

    def test_diagnostic_str(self):
        assert str(Diagnostic("x", "y")) == "[x] y"


class TestCLIs:
    def test_xmlgen_writes_file(self, tmp_path, capsys):
        out = tmp_path / "auction.xml"
        assert xmlgen_main(["-f", "0.0", "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<?xml")
        assert "<site>" in text

    def test_xmlgen_stdout(self, capsys):
        assert xmlgen_main(["-f", "0.0"]) == 0
        assert "<site>" in capsys.readouterr().out

    def test_xmlgen_deterministic_by_seed(self, tmp_path):
        a, b = tmp_path / "a.xml", tmp_path / "b.xml"
        xmlgen_main(["-f", "0.0", "-s", "7", "-o", str(a)])
        xmlgen_main(["-f", "0.0", "-s", "7", "-o", str(b)])
        assert a.read_text() == b.read_text()

    def test_figure4_prints_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FIG4_SCALES", "0.0")
        assert figure4_main(["--scales", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "QaC+" in out and "CaQ" in out and "Q5" in out

    def test_xcql_runs_query_on_snapshot(self, credit_store, tmp_path, capsys):
        path = tmp_path / "credit.store.xml"
        save_store(credit_store, path)
        rc = xcql_main(
            [
                "--store", str(path),
                "--stream", "credit",
                "--query", 'count(stream("credit")//account)',
                "--now", "2003-12-15T00:00:00",
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_xcql_show_translation(self, credit_store, tmp_path, capsys):
        path = tmp_path / "credit.store.xml"
        save_store(credit_store, path)
        xcql_main(
            [
                "--store", str(path),
                "--stream", "credit",
                "--query", 'stream("credit")//account/@id',
                "--strategy", "QaC+",
                "--show-translation",
            ]
        )
        out = capsys.readouterr().out
        assert "get_fillers_by_tsid" in out
        assert "1234" in out and "7777" in out

    def test_xcql_stats_flag(self, credit_store, tmp_path, capsys):
        import json

        path = tmp_path / "credit.store.xml"
        save_store(credit_store, path)
        rc = xcql_main(
            [
                "--store", str(path),
                "--stream", "credit",
                "--query", 'count(stream("credit")//account)',
                "--now", "2003-12-15T00:00:00",
                "--stats",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = out.split("-- engine stats:", 1)[1]
        stats = json.loads(payload)
        assert stats["plan_cache"]["size"] >= 1
        assert stats["plan_cache"]["evictions"] == 0
        assert stats["plan_cache"]["invalidations"] >= 1  # register_stream
        assert "automata" in stats
        assert "credit" in stats["streams"]
        assert "delta_memo" in stats["streams"]["credit"]

    def test_xcql_replay_prints_scheduler_stats(self, credit_store, tmp_path,
                                                capsys):
        import json

        path = tmp_path / "credit.store.xml"
        save_store(credit_store, path)
        rc = xcql_main(
            [
                "--store", str(path),
                "--stream", "credit",
                "--query",
                'for $t in stream("credit")//transaction '
                "where $t/amount > 5 return $t/@id",
                "--strategy", "QaC+",
                "--replay", "2",
            ]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fillers_replayed"] == len(credit_store.fillers_since(0))
        assert report["batch_size"] == 2
        assert report["query"]["evaluations"] >= 1
        assert "routing" in report["scheduler"]
        assert "shared_prefix" in report["scheduler"]
        assert "automata" in report["scheduler"]
        assert "plan_cache" in report["engine"]

    def test_xcql_replay_raw_runs_the_stream_automaton(self, credit_store,
                                                       tmp_path, capsys):
        import json

        path = tmp_path / "credit.store.xml"
        save_store(credit_store, path)
        rc = xcql_main(
            [
                "--store", str(path),
                "--stream", "credit",
                "--query",
                'for $t in stream("credit")//transaction '
                "where $t/amount > 5 return $t/@id",
                "--strategy", "QaC+",
                "--replay", "2",
                "--raw",
            ]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        automata = report["scheduler"]["automata"]
        assert automata["registered"] == 1
        assert automata["runs"] >= 1
        assert automata["fallbacks"] == 0
        assert report["engine"]["automata"]["answers"] == automata["runs"]

    def test_xcql_raw_requires_replay(self, credit_store, tmp_path):
        path = tmp_path / "credit.store.xml"
        save_store(credit_store, path)
        with pytest.raises(SystemExit):
            xcql_main(["--store", str(path), "--query", "1", "--raw"])
