"""Differential tests: compiled closure backend vs. the tree interpreter.

Every query of the existing corpus (engine, translator, projection and
continuous-query tests, the paper's XMark picks, plus a pure-XQuery
expression battery) must produce byte-identical results under both
backends, across all three execution strategies — including *error*
behaviour (same exception type, same message).

Also covers the plan cache: repeated ``execute()`` of the same source
performs exactly one parse+translate.
"""

from __future__ import annotations

import pytest

from repro.core import Strategy
from repro.dom.nodes import Node
from repro.dom.serializer import serialize
from repro.xmark import ALL_QUERIES
from repro.xquery.compiler import compile_module
from repro.xquery.errors import (
    XQueryDynamicError,
    XQueryNameError,
    XQueryTypeError,
)
from repro.xquery.evaluator import Context, Evaluator
from repro.xquery.parser import parse

from .conftest import NOW_2003_12_15

STRATEGIES = (Strategy.QAC_PLUS, Strategy.QAC, Strategy.CAQ)


def normalized(seq: list) -> list:
    return [serialize(i) if isinstance(i, Node) else i for i in seq]


def run_differential(engine, query: str, strategy: Strategy, now=None) -> list:
    """Run one query under both backends and return the (equal) result."""
    interpreted = engine.compile(query, strategy, backend="interpreted")
    compiled = engine.compile(query, strategy, backend="compiled")
    assert compiled.plan is not None
    assert interpreted.plan is None
    a = normalized(engine.execute(interpreted, now=now))
    b = normalized(engine.execute(compiled, now=now))
    assert a == b, f"backend divergence for {query!r} under {strategy.value}"
    return b


# -- the XCQL corpus over the credit stream ---------------------------------

CREDIT_QUERIES = [
    'count(stream("credit")//account)',
    'stream("credit")//account/customer/text()',
    # §3 examples: projections, intervals, versions.
    'stream("credit")//account/creditLimit?[now]',
    'stream("credit")//account/creditLimit?[1998-01-01, 2003-12-14]',
    'stream("credit")//account/creditLimit#[1, 1]',
    'stream("credit")//account/creditLimit#[last(), last()]',
    'count(stream("credit")//transaction?[2003-09-01, 2003-12-01])',
    # predicates + joins + construction
    '''for $a in stream("credit")//account
       where some $t in $a//transaction satisfies $t/amount > 1000
       return <flagged id="{$a/@id}"/>''',
    '''for $a in stream("credit")//account
       let $limits := $a/creditLimit
       order by $a/@id descending
       return <acct id="{$a/@id}">{ count($limits) }</acct>''',
    '''for $t in stream("credit")//transaction
       where $t/status/text() = "suspended"
       return $t/vendor/text()''',
    'for $a in stream("credit")//account[@id = "1234"] return count($a//transaction)',
    'stream("credit")//transaction[amount > 500]/vendor/text()',
    '''for $a at $p in stream("credit")//account
       return concat(string($p), ":", string($a/@id))''',
    'some $a in stream("credit")//account satisfies $a/creditLimit?[now] > 4000',
    'every $a in stream("credit")//account satisfies exists($a/customer)',
    '''define function spend($a) { sum(for $t in $a//transaction return number($t/amount)) }
       for $a in stream("credit")//account return spend($a)''',
    'if (count(stream("credit")//account) > 1) then "many" else "one"',
    'stream("credit")//account[@id = "1234"]/creditLimit?[now] cast as xs:integer',
]


@pytest.mark.parametrize("strategy", STRATEGIES, ids=[s.value for s in STRATEGIES])
@pytest.mark.parametrize("query", CREDIT_QUERIES, ids=range(len(CREDIT_QUERIES)))
def test_credit_corpus_parity(credit_engine, query, strategy):
    run_differential(credit_engine, query, strategy, now=NOW_2003_12_15)


def test_credit_results_nonempty(credit_engine):
    """Sanity: the corpus actually exercises data, not empty sequences."""
    nonempty = sum(
        1
        for query in CREDIT_QUERIES
        if run_differential(credit_engine, query, Strategy.QAC, now=NOW_2003_12_15)
    )
    assert nonempty >= len(CREDIT_QUERIES) - 2


# -- the paper's XMark queries over the auction stream ----------------------


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
@pytest.mark.parametrize("strategy", STRATEGIES, ids=[s.value for s in STRATEGIES])
def test_xmark_corpus_parity(tiny_auction_engine, name, strategy):
    run_differential(tiny_auction_engine, ALL_QUERIES[name], strategy)


# -- pure XQuery expression battery (no streams) ----------------------------

EXPRESSIONS = [
    "1 + 2 * 3 - 4 idiv 2",
    "7 mod 3",
    "10 div 4",
    "(1, 2, 3), (4, 5)",
    "(1 to 10)[2]",
    "string-join((\"a\", \"b\", \"c\"), \"-\")",
    "for $x in (3, 1, 2) order by $x return $x * 10",
    "for $x in (1, 2), $y in (10, 20) return $x + $y",
    "let $s := (5, 6, 7) return $s[last()]",
    "some $x in (1, 2, 3) satisfies $x gt 2",
    "every $x in (1, 2, 3) satisfies $x ge 1",
    "if (1 < 2) then \"yes\" else \"no\"",
    "<out>{ for $i in 1 to 3 return <i n=\"{$i}\">{ $i * $i }</i> }</out>",
    "element dyn { attribute a { 1 + 1 }, text { \"body\" } }",
    "<a><b>x</b><b>y</b></a>/b/text()",
    "<a><b><c/></b></a>//c",
    "count(<a><b/><b/></a>/b | <a2/>)",
    "<a><b i=\"1\"/><b i=\"2\"/></a>/b[@i = \"2\"]",
    "(<a><b>1</b></a>/b, <c/>) instance of element()+",
    "\"42\" cast as xs:integer",
    "2000-01-01T00:00:00 + PT1M",
    "PT2H - PT30M",
    "now - PT1H lt now",
    "define function twice($x) { ($x, $x) } count(twice((1, 2)))",
    "define function fib($n) { if ($n le 1) then $n else fib($n - 1) + fib($n - 2) } fib(10)",
    "-(3.5 + 1.5)",
    "concat(\"a\", \"b\", \"c\")",
    "substring(\"hello world\", 7)",
    "contains(\"haystack\", \"hay\")",
    "number(\"3.25\") * 4",
]


@pytest.mark.parametrize("source", EXPRESSIONS, ids=range(len(EXPRESSIONS)))
def test_expression_parity(source):
    module = parse(source, xcql=True)
    interpreted = Evaluator(Context()).evaluate_module(module)
    compiled = compile_module(module)(Context())
    assert normalized(interpreted) == normalized(compiled)


# -- error parity -----------------------------------------------------------

ERROR_CASES = [
    ("nosuchfn(1, 2)", XQueryNameError),            # undefined function
    ("count(1, 2, 3)", XQueryTypeError),            # builtin arity mismatch
    ("define function f($a, $b) { $a } f(1)", XQueryTypeError),  # user arity
    ("(1)/x", XQueryTypeError),                     # non-node path step
    ("$undefined", XQueryNameError),                # undefined variable
    ("(1, 2) eq (3, 4)", XQueryTypeError),          # value comparison on seq
    ("1 div 0", XQueryDynamicError),                # division by zero
    ("5 idiv 0", XQueryDynamicError),               # integer division by zero
    ("1 mod 0", XQueryDynamicError),                # modulo by zero
    ("for $x in (1, 2) order by (1, 2) return $x", XQueryTypeError),  # bad key
    ("\"x\" cast as xs:dateTime", XQueryTypeError),  # bad cast
    (".", XQueryDynamicError),                      # undefined context item
]


@pytest.mark.parametrize(
    "source, expected", ERROR_CASES, ids=[c[0][:30] for c in ERROR_CASES]
)
def test_error_parity(source, expected):
    module = parse(source, xcql=True)
    with pytest.raises(expected) as interp_err:
        Evaluator(Context()).evaluate_module(module)
    with pytest.raises(expected) as comp_err:
        compile_module(module)(Context())
    assert str(interp_err.value) == str(comp_err.value)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=[s.value for s in STRATEGIES])
def test_engine_error_parity(credit_engine, strategy):
    cases = [
        'for $a in stream("credit")//account return nosuch($a)',
        'count(stream("credit")//account, 2)',
        'define function f($a, $b) { $a } f(stream("credit")//account)',
    ]
    for query in cases:
        errors = []
        for backend in ("interpreted", "compiled"):
            compiled = credit_engine.compile(query, strategy, backend=backend)
            with pytest.raises((XQueryNameError, XQueryTypeError)) as err:
                credit_engine.execute(compiled, now=NOW_2003_12_15)
            errors.append((type(err.value), str(err.value)))
        assert errors[0] == errors[1], f"error divergence for {query!r}"


# -- plan cache -------------------------------------------------------------


class TestPlanCache:
    def test_repeated_execute_parses_once(self, credit_engine, monkeypatch):
        """The acceptance criterion: one parse+translate for N executions."""
        import repro.core.engine as engine_module

        calls = {"parse": 0}
        real_parse = engine_module.parse

        def counting_parse(source, xcql=False):
            calls["parse"] += 1
            return real_parse(source, xcql=xcql)

        monkeypatch.setattr(engine_module, "parse", counting_parse)
        credit_engine.clear_plan_cache()
        query = 'count(stream("credit")//transaction)'
        results = [
            credit_engine.execute(query, now=NOW_2003_12_15) for _ in range(5)
        ]
        assert all(r == results[0] for r in results)
        assert calls["parse"] == 1
        info = credit_engine.plan_cache_info()
        assert info["hits"] == 4
        assert info["misses"] == 1

    def test_cache_key_includes_strategy_and_backend(self, credit_engine):
        credit_engine.clear_plan_cache()
        query = 'count(stream("credit")//account)'
        a = credit_engine.compile(query, Strategy.QAC)
        b = credit_engine.compile(query, Strategy.QAC_PLUS)
        c = credit_engine.compile(query, Strategy.QAC, backend="interpreted")
        d = credit_engine.compile(query, Strategy.QAC)
        assert a is not b
        assert a is not c
        assert a is d  # same key: cache hit returns the identical plan

    def test_use_cache_false_bypasses(self, credit_engine):
        credit_engine.clear_plan_cache()
        query = 'count(stream("credit")//account)'
        a = credit_engine.compile(query, Strategy.QAC, use_cache=False)
        b = credit_engine.compile(query, Strategy.QAC, use_cache=False)
        assert a is not b
        assert credit_engine.plan_cache_info()["size"] == 0

    def test_register_stream_invalidates(self, credit_structure, credit_fillers):
        from repro import XCQLEngine

        engine = XCQLEngine(default_now=NOW_2003_12_15)
        engine.register_stream("credit", credit_structure)
        engine.feed("credit", credit_fillers)
        engine.compile('count(stream("credit")//account)')
        assert engine.plan_cache_info()["size"] == 1
        engine.register_stream("credit2", credit_structure)
        assert engine.plan_cache_info()["size"] == 0

    def test_lru_eviction(self, credit_engine):
        from repro import XCQLEngine

        engine = XCQLEngine(default_now=NOW_2003_12_15, plan_cache_size=2)
        engine.register_stream(
            "credit", credit_engine.tag_structures["credit"],
            credit_engine.stores["credit"],
        )
        q1 = 'count(stream("credit")//account)'
        q2 = 'count(stream("credit")//transaction)'
        q3 = 'count(stream("credit")//creditLimit)'
        engine.compile(q1)
        engine.compile(q2)
        engine.compile(q3)  # evicts q1
        assert engine.plan_cache_info()["size"] == 2
        first = engine.compile(q2)  # still cached
        assert engine.plan_cache_info()["hits"] >= 1
        again = engine.compile(q2)
        assert first is again

    def test_continuous_query_shares_cached_plan(self, credit_engine):
        from repro.streams.continuous import ContinuousQuery

        credit_engine.clear_plan_cache()
        q = ContinuousQuery(
            credit_engine,
            'for $a in stream("credit")//account return $a/@id',
            strategy=Strategy.QAC_PLUS,
        )
        assert q.compiled.plan is not None
        # A second standing query over the same source reuses the plan.
        q2 = ContinuousQuery(
            credit_engine,
            'for $a in stream("credit")//account return $a/@id',
            strategy=Strategy.QAC_PLUS,
        )
        assert q.compiled is q2.compiled
        r1 = q.evaluate(NOW_2003_12_15)
        assert q.engine.plan_cache_info()["hits"] >= 1
        assert normalized(r1) == normalized(q.last_result)

    def test_interpreted_backend_still_available(self, credit_engine):
        q = 'count(stream("credit")//account)'
        interp = credit_engine.execute(
            q, now=NOW_2003_12_15, backend="interpreted"
        )
        comp = credit_engine.execute(q, now=NOW_2003_12_15, backend="compiled")
        assert interp == comp == [2]

    def test_execute_on_view_cached(self, credit_engine, monkeypatch):
        import repro.core.engine as engine_module

        calls = {"parse": 0}
        real_parse = engine_module.parse

        def counting_parse(source, xcql=False):
            calls["parse"] += 1
            return real_parse(source, xcql=xcql)

        monkeypatch.setattr(engine_module, "parse", counting_parse)
        credit_engine.clear_plan_cache()
        q = 'count(stream("credit")//account)'
        a = credit_engine.execute_on_view(q, now=NOW_2003_12_15)
        b = credit_engine.execute_on_view(q, now=NOW_2003_12_15)
        assert a == b == [2]
        assert calls["parse"] == 1

    def test_invalid_backend_rejected(self, credit_engine):
        with pytest.raises(ValueError):
            credit_engine.compile('count(stream("credit")//account)', backend="jit")
