"""Tests for the XML node model, parser and serializer (repro.dom)."""

import pytest
from hypothesis import given, strategies as st

from repro.dom import (
    Attr,
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
    XMLParseError,
    parse_document,
    parse_fragment,
    serialize,
)
from repro.dom.nodes import document_order_key, sort_document_order


class TestNodeModel:
    def test_append_sets_parent(self):
        parent = Element("a")
        child = parent.append(Element("b"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_reparenting_detaches(self):
        first = Element("a")
        second = Element("b")
        child = first.append(Element("c"))
        second.append(child)
        assert first.children == []
        assert child.parent is second

    def test_remove(self):
        parent = Element("a")
        child = parent.append(Element("b"))
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_insert(self):
        parent = Element("a")
        parent.append(Element("x"))
        parent.insert(0, Element("first"))
        assert parent.children[0].tag == "first"

    def test_string_value_concatenates_descendant_text(self):
        root = parse_document("<a>one<b>two</b>three</a>").document_element
        assert root.string_value() == "onetwothree"

    def test_element_text_direct_children_only(self):
        root = parse_document("<a>one<b>two</b></a>").document_element
        assert root.text() == "one"

    def test_first_and_child_elements(self):
        root = parse_document("<a><b>1</b><c/><b>2</b></a>").document_element
        assert root.first("b").text() == "1"
        assert len(root.child_elements("b")) == 2
        assert root.first("zzz") is None

    def test_attribute_helpers(self):
        element = Element("a", {"x": "1"})
        element.set("y", "2")
        assert element.get("x") == "1"
        assert element.get("missing", "dflt") == "dflt"
        names = [attr.name for attr in element.attribute_nodes()]
        assert names == ["x", "y"]

    def test_copy_is_deep_and_detached(self):
        root = parse_document('<a p="1"><b>t</b></a>').document_element
        clone = root.copy()
        assert clone.parent is None
        assert serialize(clone) == serialize(root)
        clone.children[0].append(Text("more"))
        assert serialize(clone) != serialize(root)

    def test_ancestors_and_root(self):
        document = parse_document("<a><b><c/></b></a>")
        root = document.document_element
        c = root.children[0].children[0]
        assert [n.tag for n in c.ancestors() if isinstance(n, Element)] == ["b", "a"]
        assert c.root() is document
        detached = Element("solo")
        assert detached.root() is detached

    def test_iter_elements_document_order(self):
        root = parse_document("<a><b><c/></b><d/></a>").document_element
        assert [e.tag for e in root.iter_elements()] == ["b", "c", "d"]


class TestDocumentOrder:
    def test_sorted_after_shuffle(self):
        root = parse_document("<a><b/><c/><d><e/></d></a>").document_element
        nodes = list(root.iter_elements())
        shuffled = [nodes[2], nodes[0], nodes[3], nodes[1]]
        assert [n.tag for n in sort_document_order(shuffled)] == ["b", "c", "d", "e"]

    def test_dedup(self):
        root = parse_document("<a><b/></a>").document_element
        b = root.children[0]
        assert sort_document_order([b, b, root]) == [root, b]

    def test_order_recomputed_after_mutation(self):
        root = parse_document("<a><b/></a>").document_element
        b = root.children[0]
        key_before = document_order_key(b)
        root.insert(0, Element("new"))
        assert document_order_key(b) > key_before

    def test_attr_ordered_with_owner(self):
        root = parse_document('<a x="1"><b/></a>').document_element
        attr = root.attribute_nodes()[0]
        b = root.children[0]
        assert document_order_key(attr) <= document_order_key(b)


class TestParser:
    def test_basic(self):
        document = parse_document('<a x="1"><b>hi</b></a>')
        root = document.document_element
        assert root.tag == "a"
        assert root.attrs == {"x": "1"}
        assert root.children[0].text() == "hi"

    def test_self_closing(self):
        root = parse_document("<a><b/></a>").document_element
        assert root.children[0].children == []

    def test_entities_in_text_and_attrs(self):
        root = parse_document('<a t="&lt;&amp;&quot;">&#65;&#x42;&gt;</a>').document_element
        assert root.attrs["t"] == '<&"'
        assert root.text() == "AB>"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&nope;</a>")

    def test_cdata(self):
        root = parse_document("<a><![CDATA[<raw> & stuff]]></a>").document_element
        assert root.text() == "<raw> & stuff"

    def test_comment_and_pi(self):
        document = parse_document("<?xml version='1.0'?><!--c--><a><?p data?></a>")
        assert isinstance(document.children[0], Comment)
        pi = document.document_element.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "p"

    def test_doctype_skipped(self):
        document = parse_document(
            "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>"
        )
        assert document.document_element.text() == "x"

    def test_whitespace_dropped_by_default(self):
        root = parse_document("<a>\n  <b/>\n</a>").document_element
        assert all(not isinstance(c, Text) for c in root.children)

    def test_whitespace_kept_on_request(self):
        root = parse_document("<a>\n  <b/>\n</a>", keep_whitespace=True).document_element
        assert any(isinstance(c, Text) for c in root.children)

    def test_namespace_prefixes_kept(self):
        root = parse_document("<stream:structure><tag/></stream:structure>").document_element
        assert root.tag == "stream:structure"

    @pytest.mark.parametrize(
        "bad",
        [
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a/><b/>",
            "text only",
            "<a><b></a></b>",
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(XMLParseError):
            parse_document(bad)

    def test_error_carries_position(self):
        try:
            parse_document("<a>\n<b></c></a>")
        except XMLParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected XMLParseError")

    def test_parse_fragment_multiple_siblings(self):
        nodes = parse_fragment("<a/>text<b/>")
        assert len(nodes) == 3
        assert isinstance(nodes[1], Text)

    def test_parse_fragment_with_declaration(self):
        nodes = parse_fragment("<?xml version='1.0'?><a/>")
        assert len(nodes) == 1


class TestSerializer:
    def test_escaping(self):
        element = Element("a", {"t": 'x"<'})
        element.add_text("a<b&c")
        out = serialize(element)
        assert out == '<a t="x&quot;&lt;">a&lt;b&amp;c</a>'

    def test_pretty_print(self):
        out = serialize(parse_document("<a><b><c/></b></a>"), indent="  ")
        assert out == "<a>\n  <b>\n    <c/>\n  </b>\n</a>"

    def test_mixed_content_not_indented(self):
        out = serialize(parse_document("<a>hi<b/></a>"), indent="  ")
        assert out == "<a>hi<b/></a>"

    def test_xml_declaration(self):
        out = serialize(Element("a"), xml_declaration=True)
        assert out.startswith("<?xml")

    def test_document_roundtrip(self):
        text = '<a x="1"><b>hi &amp; bye</b><c/><!--note--></a>'
        assert serialize(parse_document(text)) == text


_tag_names = st.sampled_from(["a", "b", "c", "data", "x-y", "ns:t"])
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="<>&\r"),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip())


@st.composite
def _elements(draw, depth=0):
    element = Element(draw(_tag_names))
    for name in draw(st.lists(st.sampled_from(["p", "q", "r"]), max_size=2, unique=True)):
        element.set(name, draw(_texts))
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append(draw(_elements(depth=depth + 1)))
            else:
                element.append(Text(draw(_texts)))
    return element


class TestRoundTripProperty:
    @given(_elements())
    def test_serialize_parse_round_trip(self, element):
        document = Document()
        document.append(element)
        text = serialize(document)
        reparsed = parse_document(text, keep_whitespace=True)
        assert serialize(reparsed) == text
