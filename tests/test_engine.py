"""Tests for the XCQLEngine facade and strategy equivalence."""

import pytest

from repro import Strategy, XCQLEngine
from repro.core.translator import TranslationError
from repro.dom import serialize
from repro.temporal import XSDateTime
from repro.xquery.errors import XQueryDynamicError

from tests.conftest import NOW_2003_12_15

# Queries over the credit fixture that every strategy must agree on.
EQUIVALENCE_QUERIES = [
    'count(stream("credit")//account)',
    'count(stream("credit")//transaction)',
    'for $a in stream("credit")//account order by $a/@id return $a/@id',
    'for $a in stream("credit")//account return count($a/creditLimit)',
    'sum(stream("credit")//transaction/amount)',
    'for $a in stream("credit")//account where $a/customer = "Jane Roe" return $a/@id',
    'stream("credit")//account/creditLimit?[now]',
    'stream("credit")//transaction?[2003-09-01, 2003-10-01]',
    'for $a in stream("credit")//account return $a/creditLimit#[1]',
    'for $t in stream("credit")//transaction where $t/amount > 1000 '
    'and $t/status?[now] = "charged" return $t/@id',
    'for $a in stream("credit")//account return '
    "<r id=\"{$a/@id}\">{ count($a/transaction) }</r>",
    'some $t in stream("credit")//transaction satisfies $t/amount > 1000',
]


def normalized(result) -> list[str]:
    out = []
    for item in result:
        out.append(serialize(item) if hasattr(item, "string_value") else str(item))
    return out


class TestStrategyEquivalence:
    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_all_strategies_and_view_agree(self, credit_engine, query):
        reference = normalized(credit_engine.execute_on_view(query, now=NOW_2003_12_15))
        for strategy in (Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ):
            result = normalized(
                credit_engine.execute(query, strategy=strategy, now=NOW_2003_12_15)
            )
            assert result == reference, f"{strategy} diverged on {query}"


class TestPaperQueries:
    def test_query1_maxed_out_accounts(self, credit_engine):
        query = """
        for $a in stream("credit")//account
        where sum($a/transaction?[2003-11-01,2003-12-01][status = "charged"]/amount) >=
              $a/creditLimit?[now]
        return <account id="{$a/@id}"/>
        """
        result = credit_engine.execute(query, now=NOW_2003_12_15)
        assert [e.attrs["id"] for e in result] == ["7777"]

    def test_query2_no_fraud_in_fixture(self, credit_engine):
        query = """
        for $a in stream("credit")//account
        where sum($a/transaction?[now-PT1H,now][status = "charged"]/amount) >=
              max($a/creditLimit?[now] * 0.9, 5000)
        return <alert id="{$a/@id}"/>
        """
        assert credit_engine.execute(query, now=NOW_2003_12_15) == []

    def test_suspended_transaction_excluded_at_now(self, credit_engine):
        # Paper §6.1: after filler 5 (status -> suspended), the >1000 query
        # with ?[now] must NOT return transaction 23456.
        query = """
        for $t in stream("credit")//transaction
        where $t/amount > 1000 and $t/status?[now] = "charged"
        return $t/@id
        """
        result = credit_engine.execute(query, now=NOW_2003_12_15)
        assert normalized(result) == []

    def test_suspended_transaction_included_existentially(self, credit_engine):
        # Without the projection the existential semantics match the old
        # "charged" version (the paper's first, less accurate variant).
        query = """
        for $t in stream("credit")//transaction
        where $t/amount > 1000 and $t/status = "charged"
        return $t/@id
        """
        result = credit_engine.execute(query, now=NOW_2003_12_15)
        assert [a.value for a in result] == ["23456"]

    def test_version_projection_equivalent_to_now(self, credit_engine):
        by_now = credit_engine.execute(
            'for $t in stream("credit")//transaction where $t/amount > 1000 '
            'and $t/status?[now] = "charged" return $t/@id',
            now=NOW_2003_12_15,
        )
        by_last = credit_engine.execute(
            'for $t in stream("credit")//transaction where $t/amount > 1000 '
            'and $t/status#[last] = "charged" return $t/@id',
            now=NOW_2003_12_15,
        )
        assert normalized(by_now) == normalized(by_last)

    def test_historical_query_sees_old_state(self, credit_engine):
        # In October 2003 the big transaction was still "charged".
        query = """
        for $t in stream("credit")//transaction
        where $t/amount > 1000 and $t/status?[2003-10-01] = "charged"
        return $t/@id
        """
        result = credit_engine.execute(query, now=NOW_2003_12_15)
        assert [a.value for a in result] == ["23456"]


class TestEngineMechanics:
    def test_compiled_query_reusable(self, credit_engine):
        compiled = credit_engine.compile('count(stream("credit")//account)')
        assert credit_engine.execute(compiled) == [2]
        assert credit_engine.execute(compiled) == [2]

    def test_translated_source_exposed(self, credit_engine):
        compiled = credit_engine.compile('stream("credit")//account')
        assert "get_fillers" in compiled.translated_source

    def test_unknown_stream_at_compile(self, credit_engine):
        with pytest.raises(TranslationError):
            credit_engine.compile('stream("nope")//x')

    def test_feed_returns_new_count(self, credit_engine, credit_fillers):
        assert credit_engine.feed("credit", credit_fillers[0]) == 0  # duplicate

    def test_explain(self, credit_engine):
        plan = credit_engine.explain(
            'count(stream("credit")//transaction?[now-PT1H, now])',
            Strategy.QAC_PLUS,
        )
        assert plan["strategy"] == "QaC+"
        assert "get_fillers_by_tsid" in plan["translated"]
        assert plan["depends_on"] == [("credit", 5)]
        assert plan["time_sensitive"] is True
        assert plan["hoisted_calls"] == 0

    def test_explain_with_optimizer(self, credit_engine):
        plan = credit_engine.explain(
            'for $a in stream("credit")//account '
            "return ($a/creditLimit, $a/creditLimit)",
            Strategy.QAC,
            optimize=True,
        )
        assert plan["hoisted_calls"] == 1
        assert plan["depends_on"] == [("credit", "*")]
        assert plan["time_sensitive"] is False

    def test_register_function(self, credit_engine):
        credit_engine.register_function(
            "double", lambda ctx, args: [args[0][0] * 2], (1, 1)
        )
        assert credit_engine.execute("double(21)") == [42]

    def test_default_now_used(self, credit_structure, credit_fillers):
        engine = XCQLEngine(default_now=XSDateTime.parse("2001-01-01T00:00:00"))
        engine.register_stream("credit", credit_structure)
        engine.feed("credit", credit_fillers)
        # At 2001-01-01 the Smith limit was still 2000.
        result = engine.execute('stream("credit")//account/creditLimit?[now]')
        assert sorted(e.text().strip() for e in result) == ["2000", "800"]

    def test_single_stream_get_fillers_shorthand(self, credit_engine):
        # The paper's single-argument get_fillers(0).
        result = credit_engine.execute(
            'get_fillers(0)/creditAccounts', strategy=Strategy.QAC
        )
        assert len(result) == 1

    def test_multi_stream_requires_name(self, credit_engine, credit_structure):
        credit_engine.register_stream("other", credit_structure)
        with pytest.raises(XQueryDynamicError):
            credit_engine.execute("get_fillers(0)")

    def test_two_streams_joinable(self, credit_engine, credit_structure, credit_fillers):
        from repro.fragments import FragmentStore

        # A second stream with disjoint content: an empty credit system.
        from repro.fragments.model import Filler
        from repro.dom.nodes import Element

        store = FragmentStore(credit_structure)
        store.append(
            Filler(10_000, 1, XSDateTime(2003, 1, 1), Element("creditAccounts"))
        )
        credit_engine.stores["backup"] = store
        credit_engine.tag_structures["backup"] = credit_structure
        count = credit_engine.execute(
            'count(stream("credit")//account) + count(stream("backup")//account)',
        )
        assert count == [2]
