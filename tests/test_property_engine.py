"""Property-based tests over the whole fragment/query pipeline."""

from hypothesis import given, settings, strategies as st

from repro import Fragmenter, FragmentStore, Strategy, TagStructure, XCQLEngine
from repro.dom import Element, serialize
from repro.fragments import temporalize, schema_driven_temporalize
from repro.temporal import XSDateTime

# A three-level schema: snapshot root, temporal groups, event readings
# with embedded snapshot value.
STRUCTURE = TagStructure.build(
    {
        "name": "lab",
        "type": "snapshot",
        "children": [
            {
                "name": "sensor",
                "type": "temporal",
                "children": [
                    {"name": "location", "type": "snapshot"},
                    {
                        "name": "reading",
                        "type": "event",
                        "children": [{"name": "value", "type": "snapshot"}],
                    },
                ],
            }
        ],
    }
)

_values = st.integers(min_value=0, max_value=99)
_hours = st.integers(min_value=0, max_value=400)


@st.composite
def lab_documents(draw):
    """A random snapshot lab document conforming to STRUCTURE."""
    lab = Element("lab")
    for sensor_index in range(draw(st.integers(0, 4))):
        sensor = Element("sensor", {"id": f"s{sensor_index}"})
        location = Element("location")
        location.add_text(f"room{draw(_values)}")
        sensor.append(location)
        for _ in range(draw(st.integers(0, 4))):
            reading = Element("reading")
            value = Element("value")
            value.add_text(str(draw(_values)))
            reading.append(value)
            sensor.append(reading)
        lab.append(sensor)
    return lab


T0 = XSDateTime.parse("2003-01-01T00:00:00")


def build_engine(document: Element, **store_kwargs) -> XCQLEngine:
    engine = XCQLEngine(default_now=XSDateTime.parse("2003-06-01T00:00:00"))
    store = FragmentStore(STRUCTURE, **store_kwargs)
    engine.register_stream("lab", STRUCTURE, store)
    engine.feed("lab", Fragmenter(STRUCTURE).fragment(document, T0))
    return engine


class TestFragmentationRoundTrip:
    @given(lab_documents())
    @settings(max_examples=40, deadline=None)
    def test_temporalize_preserves_values(self, document):
        original_values = [
            v.string_value() for v in document.iter_elements() if v.tag == "value"
        ]
        engine = build_engine(document)
        rebuilt = temporalize(engine.stores["lab"])
        rebuilt_values = [
            v.string_value()
            for v in rebuilt.document_element.iter_elements()
            if v.tag == "value"
        ]
        assert rebuilt_values == original_values

    @given(lab_documents())
    @settings(max_examples=40, deadline=None)
    def test_schema_driven_equals_generic(self, document):
        engine = build_engine(document)
        store = engine.stores["lab"]
        assert serialize(schema_driven_temporalize(store, STRUCTURE)) == serialize(
            temporalize(store)
        )

    @given(lab_documents())
    @settings(max_examples=30, deadline=None)
    def test_fragment_count_matches_schema(self, document):
        sensors = len(document.child_elements("sensor"))
        readings = sum(
            len(s.child_elements("reading")) for s in document.child_elements("sensor")
        )
        engine = build_engine(document)
        assert engine.stores["lab"].filler_count == 1 + sensors + readings


QUERIES = [
    'count(stream("lab")//sensor)',
    'count(stream("lab")//reading)',
    'sum(stream("lab")//reading/value)',
    'for $s in stream("lab")//sensor order by $s/@id return count($s/reading)',
    'for $s in stream("lab")//sensor where count($s/reading) > 1 return $s/@id',
    'stream("lab")//reading?[2003-01-01, 2003-02-01]',
]


def normalized(result) -> list[str]:
    return [
        serialize(item) if hasattr(item, "string_value") else str(item)
        for item in result
    ]


class TestStrategyAgreementProperty:
    @given(lab_documents(), st.sampled_from(QUERIES))
    @settings(max_examples=60, deadline=None)
    def test_strategies_agree_on_random_documents(self, document, query):
        engine = build_engine(document)
        reference = normalized(engine.execute_on_view(query))
        for strategy in (Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ):
            assert normalized(engine.execute(query, strategy=strategy)) == reference

    @given(lab_documents(), st.sampled_from(QUERIES))
    @settings(max_examples=30, deadline=None)
    def test_index_and_cache_do_not_change_answers(self, document, query):
        fast = build_engine(document, use_index=True, use_cache=True)
        slow = build_engine(document, use_index=False, use_cache=False)
        assert normalized(fast.execute(query)) == normalized(slow.execute(query))


class TestIngestOrderInvariance:
    @given(lab_documents(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_shuffled_arrival_same_view(self, document, rng):
        fillers = Fragmenter(STRUCTURE).fragment(document, T0)
        in_order = FragmentStore(STRUCTURE)
        in_order.extend(fillers)
        shuffled_fillers = list(fillers)
        rng.shuffle(shuffled_fillers)
        shuffled = FragmentStore(STRUCTURE)
        shuffled.extend(shuffled_fillers)
        assert serialize(temporalize(shuffled)) == serialize(temporalize(in_order))
