"""End-to-end scenarios lifted directly from the paper's text."""

import pytest

from repro import (
    Channel,
    Fragmenter,
    FragmentStore,
    SimulatedClock,
    Strategy,
    StreamClient,
    StreamServer,
    TagStructure,
    XCQLEngine,
)
from repro.dom import Element, parse_document, serialize
from repro.fragments import parse_filler, temporalize
from repro.temporal import XSDateTime

from tests.conftest import CREDIT_TAG_STRUCTURE_XML, NOW_2003_12_15

# The exact fillers printed in §4.2.
PAPER_FILLERS = [
    """<filler id="100" tsid="5" validTime="2003-10-23T12:23:34">
         <transaction id="12345">
           <vendor>Southlake Pizza</vendor>
           <amount>38.20</amount>
           <hole id="200" tsid="7"/>
         </transaction>
       </filler>""",
    """<filler id="200" tsid="7" validTime="2003-10-23T12:23:35">
         <status>charged</status>
       </filler>""",
    """<filler id="300" tsid="5" validTime="2003-09-10T14:30:12">
         <transaction id="23456">
           <vendor>ResAris Contaceu</vendor>
           <amount>1200</amount>
           <hole id="400" tsid="7"/>
         </transaction>
       </filler>""",
    """<filler id="400" tsid="7" validTime="2003-09-10T14:30:13">
         <status>charged</status>
       </filler>""",
    """<filler id="400" tsid="7" validTime="2003-11-01T10:12:56">
         <status>suspended</status>
       </filler>""",
]


@pytest.fixture()
def paper_engine(credit_structure):
    """An engine loaded with exactly the §4.2 fillers, under one account."""
    engine = XCQLEngine(default_now=NOW_2003_12_15)
    store = engine.register_stream("credit", credit_structure)
    root = Element("creditAccounts")
    root.append(Element("hole", {"id": "10", "tsid": "2"}))
    account = Element("account", {"id": "1234"})
    customer = Element("customer")
    customer.add_text("John Smith")
    account.append(customer)
    account.append(Element("hole", {"id": "100", "tsid": "5"}))
    account.append(Element("hole", {"id": "300", "tsid": "5"}))
    from repro.fragments.model import Filler

    store.append(Filler(0, 1, XSDateTime(1998, 1, 1), root))
    store.append(Filler(10, 2, XSDateTime(1998, 10, 10), account))
    for text in PAPER_FILLERS:
        store.append(parse_filler(text))
    return engine


class TestSection42Fillers:
    def test_fillers_parse_as_printed(self):
        fillers = [parse_filler(text) for text in PAPER_FILLERS]
        assert [f.filler_id for f in fillers] == [100, 200, 300, 400, 400]
        assert fillers[0].hole_ids() == [200]

    def test_status_versions_derived(self, paper_engine):
        store = paper_engine.stores["credit"]
        versions = store.versions_of(400)
        assert [v.text() for v in versions] == ["charged", "suspended"]
        assert versions[0].attrs["vtTo"] == "2003-11-01T10:12:56"
        assert versions[1].attrs["vtTo"] == "now"

    def test_materialized_view_matches_section_31(self, paper_engine):
        view = temporalize(paper_engine.stores["credit"])
        text = serialize(view)
        assert "<customer>John Smith</customer>" in text
        assert 'vtFrom="2003-10-23T12:23:35" vtTo="now"' in text  # status 200

    def test_section_61_query_with_projection(self, paper_engine):
        # "The above query would not retrieve the filler 3, since its
        # current status, after filler 5 is received, is suspended."
        query = """
        for $t in stream("credit")/creditAccounts//transaction
        where $t/amount > 1000 and $t/status?[now] = "charged"
        return $t
        """
        for strategy in (Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ):
            assert paper_engine.execute(query, strategy=strategy) == []

    def test_section_61_query_existential(self, paper_engine):
        # "due to the existential semantics ... the above query will
        # retrieve filler 3".
        query = """
        for $t in stream("credit")/creditAccounts//transaction
        where $t/amount > 1000 and $t/status = "charged"
        return $t
        """
        result = paper_engine.execute(query)
        assert len(result) == 1
        assert result[0].attrs["id"] == "23456"

    def test_e_last_equivalent(self, paper_engine):
        # "we could have also used e#[last] to achieve the same result."
        query = """
        for $t in stream("credit")/creditAccounts//transaction
        where $t/amount > 1000 and $t/status#[last] = "charged"
        return $t
        """
        assert paper_engine.execute(query) == []

    def test_before_suspension_it_was_charged(self, paper_engine):
        query = """
        for $t in stream("credit")/creditAccounts//transaction
        where $t/amount > 1000 and $t/status?[2003-10-01] = "charged"
        return $t/@id
        """
        assert [a.value for a in paper_engine.execute(query)] == ["23456"]


class TestFullBroadcastPipeline:
    def test_paper_lifecycle(self):
        """The complete story: publish, charge, status update, query."""
        structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
        clock = SimulatedClock("2003-09-01T00:00:00")
        channel = Channel()
        client = StreamClient(clock)
        client.tune_in(channel)
        server = StreamServer("credit", structure, channel, clock)
        server.announce()
        server.publish_document(
            parse_document(
                "<creditAccounts><account id='1234'>"
                "<customer>John Smith</customer>"
                "<creditLimit>5000</creditLimit>"
                "</account></creditAccounts>"
            )
        )
        account = server.hole_id(0, "account", "1234")

        # A charge request arrives; its status is confirmed a second later
        # ("requesting a charge and receiving a response at a later time").
        clock.advance("P9DT14H30M12S")
        txn = Element("transaction", {"id": "23456"})
        vendor = Element("vendor")
        vendor.add_text("ResAris Contaceu")
        txn.append(vendor)
        amount = Element("amount")
        amount.add_text("1200")
        txn.append(amount)
        emitted = server.emit_event(account, txn)
        status_hole = int(emitted.holes()[0].attrs["id"]) if emitted.holes() else None
        assert status_hole is None  # no status child yet

        clock.advance("PT1S")
        status = Element("status")
        status.add_text("charged")
        # The status arrives as an update *inside* the transaction: the
        # server replaces the transaction fragment with one that has a
        # status hole, then fills it.
        with_status = server.latest_content(emitted.filler_id)
        new_txn = Element("transaction", dict(with_status.attrs))
        for child in with_status.children:
            new_txn.append(child.copy() if isinstance(child, Element) else child)
        new_txn.append(status)
        server.update_fragment(emitted.filler_id, new_txn)

        flagged = client.engine.execute(
            'for $t in stream("credit")//transaction '
            'where $t/amount > 1000 and $t/status?[now] = "charged" '
            "return $t/@id",
            now=clock.now(),
        )
        assert [a.value for a in flagged] == ["23456"]

        # Two months later the customer disputes; the status flips.
        clock.advance("P52DT19H42M44S")
        status_id = server.hole_id(emitted.filler_id, "status", "23456")
        suspended = Element("status")
        suspended.add_text("suspended")
        server.update_fragment(status_id, suspended)

        flagged_after = client.engine.execute(
            'for $t in stream("credit")//transaction '
            'where $t/amount > 1000 and $t/status?[now] = "charged" '
            "return $t/@id",
            now=clock.now(),
        )
        assert flagged_after == []

        # But history is preserved: the charge was valid back then.
        historical = client.engine.execute(
            'for $t in stream("credit")//transaction '
            'where $t/amount > 1000 and $t/status?[2003-10-01] = "charged" '
            "return $t/@id",
            now=clock.now(),
        )
        assert [a.value for a in historical] == ["23456"]


class TestWindowSimulationOfCQL:
    def test_tuple_window_via_version_projection(self, credit_engine):
        # Paper §2: CQL's "Rows n" windows are version projections after a
        # grouping; the transactions of one account, first N.
        query = """
        for $a in stream("credit")//account[@id = "1234"]
        return $a/transaction#[1, 1]
        """
        result = credit_engine.execute(query, now=NOW_2003_12_15)
        assert len(result) == 1

    def test_time_window_via_interval_projection(self, credit_engine):
        query = """
        for $a in stream("credit")//account
        return count($a/transaction?[2003-11-01, 2003-12-01])
        """
        # Account 1234's transactions are in September/October; only
        # account 7777 charged inside the November window.
        result = credit_engine.execute(query, now=NOW_2003_12_15)
        assert result == [0, 1]
