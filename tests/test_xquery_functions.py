"""Tests for the built-in function library (repro.xquery.functions)."""

import math

import pytest

from repro.dom import parse_document
from repro.temporal import XSDateTime
from repro.xquery import Context, evaluate
from repro.xquery.errors import XQueryDynamicError, XQueryTypeError


@pytest.fixture()
def ctx():
    context = Context(now=XSDateTime.parse("2003-12-15T00:00:00"))
    context.register_document(
        "d.xml", parse_document("<r><x>1</x><x>2</x><y unit='m'>5</y></r>")
    )
    return context


class TestSequenceFunctions:
    def test_count_empty_exists(self):
        assert evaluate("count((1, 2, 3))") == [3]
        assert evaluate("empty(())") == [True]
        assert evaluate("exists(())") == [False]
        assert evaluate("exists((1))") == [True]

    def test_boolean_family(self):
        assert evaluate("not(0)") == [True]
        assert evaluate("boolean((1))") == [True]
        assert evaluate("true()") == [True]
        assert evaluate("false()") == [False]

    def test_distinct_values(self):
        assert evaluate('distinct-values((1, 2, 1, "a", "a"))') == [1, 2, "a"]

    def test_reverse(self):
        assert evaluate("reverse((1, 2, 3))") == [3, 2, 1]

    def test_subsequence(self):
        assert evaluate("subsequence((1, 2, 3, 4), 2)") == [2, 3, 4]
        assert evaluate("subsequence((1, 2, 3, 4), 2, 2)") == [2, 3]

    def test_index_of(self):
        assert evaluate('index-of(("a", "b", "a"), "a")') == [1, 3]

    def test_insert_remove(self):
        assert evaluate("insert-before((1, 3), 2, (2))") == [1, 2, 3]
        assert evaluate("remove((1, 2, 3), 2)") == [1, 3]

    def test_cardinality_checks(self):
        assert evaluate("exactly-one((5))") == [5]
        with pytest.raises(XQueryTypeError):
            evaluate("exactly-one((1, 2))")
        assert evaluate("zero-or-one(())") == []
        with pytest.raises(XQueryTypeError):
            evaluate("zero-or-one((1, 2))")


class TestAggregates:
    def test_sum(self):
        assert evaluate("sum((1, 2, 3))") == [6]
        assert evaluate("sum(())") == [0]

    def test_sum_over_nodes(self, ctx):
        assert evaluate('sum(doc("d.xml")//x)', ctx) == [3]

    def test_sum_dollar_amounts(self):
        # The paper's sample fillers carry "$38.20" amounts.
        context = Context()
        context.register_document("m.xml", parse_document("<r><a>$38.20</a><a>$1.80</a></r>"))
        assert evaluate('sum(doc("m.xml")//a)', context) == [40.0]

    def test_avg(self):
        assert evaluate("avg((2, 4))") == [3]
        assert evaluate("avg(())") == []

    def test_min_max_sequence(self):
        assert evaluate("max((1, 5, 3))") == [5]
        assert evaluate("min((1, 5, 3))") == [1]

    def test_max_two_arguments_cql_style(self):
        # The paper writes max($limit * 0.9, 5000).
        assert evaluate("max(4500, 5000)") == [5000]
        assert evaluate("max((), 5000)") == [5000]


class TestStringFunctions:
    def test_concat_contains(self):
        assert evaluate('concat("a", "b", "c")') == ["abc"]
        assert evaluate('contains("hello", "ell")') == [True]
        assert evaluate('starts-with("hello", "he")') == [True]
        assert evaluate('ends-with("hello", "lo")') == [True]

    def test_substring(self):
        assert evaluate('substring("hello", 2)') == ["ello"]
        assert evaluate('substring("hello", 2, 3)') == ["ell"]

    def test_substring_before_after(self):
        assert evaluate('substring-before("a=b", "=")') == ["a"]
        assert evaluate('substring-after("a=b", "=")') == ["b"]
        assert evaluate('substring-before("ab", "x")') == [""]

    def test_string_length_normalize(self):
        assert evaluate('string-length("hey")') == [3]
        assert evaluate('normalize-space("  a   b ")') == ["a b"]

    def test_case(self):
        assert evaluate('upper-case("aB")') == ["AB"]
        assert evaluate('lower-case("aB")') == ["ab"]

    def test_string_join(self):
        assert evaluate('string-join(("a", "b"), "-")') == ["a-b"]
        assert evaluate('string-join(("a", "b"))') == ["ab"]

    def test_translate(self):
        assert evaluate('translate("abc", "abc", "xy")') == ["xy"]

    def test_matches(self):
        assert evaluate('matches("hello world", "wor.d")') == [True]
        assert evaluate('matches("hello", "^h")') == [True]
        assert evaluate('matches("hello", "HELLO", "i")') == [True]
        assert evaluate('matches("hello", "^x")') == [False]

    def test_matches_bad_regex(self):
        with pytest.raises(XQueryDynamicError):
            evaluate('matches("x", "(unclosed")')

    def test_matches_bad_flag(self):
        with pytest.raises(XQueryDynamicError):
            evaluate('matches("x", "x", "q")')

    def test_replace(self):
        assert evaluate('replace("a-b-c", "-", "+")') == ["a+b+c"]
        assert evaluate('replace("AxA", "a", "_", "i")') == ["_x_"]

    def test_tokenize(self):
        assert evaluate('tokenize("a, b,c", ",\\s*")') == ["a", "b", "c"]
        assert evaluate('tokenize("one", ";")') == ["one"]

    def test_string_of_number(self):
        assert evaluate("string(5)") == ["5"]
        assert evaluate("string(())") == [""]


class TestNumericFunctions:
    def test_number(self, ctx):
        assert evaluate('number("3.5")') == [3.5]
        assert math.isnan(evaluate("number(())")[0])

    def test_rounding(self):
        assert evaluate("round(2.5)") == [3]
        assert evaluate("round(-2.5)") == [-2]
        assert evaluate("floor(2.9)") == [2]
        assert evaluate("ceiling(2.1)") == [3]
        assert evaluate("abs(-4)") == [4]


class TestNodeFunctions:
    def test_name(self, ctx):
        assert evaluate('name(doc("d.xml")/r)', ctx) == ["r"]
        assert evaluate('for $a in doc("d.xml")//@unit return name($a)', ctx) == ["unit"]

    def test_local_name_strips_prefix(self):
        context = Context()
        context.register_document("n.xml", parse_document("<ns:a><b/></ns:a>"))
        assert evaluate('local-name(doc("n.xml")/*)', context) == ["a"]

    def test_root(self, ctx):
        assert evaluate('name(root(doc("d.xml")//x)/r)', ctx) == ["r"]

    def test_data_atomizes(self, ctx):
        assert evaluate('data(doc("d.xml")//x)', ctx) == ["1", "2"]

    def test_deep_equal(self, ctx):
        assert evaluate('deep-equal(doc("d.xml")//x, doc("d.xml")//x)', ctx) == [True]
        assert evaluate('deep-equal(doc("d.xml")//x, doc("d.xml")//y)', ctx) == [False]

    def test_doc_unknown(self):
        with pytest.raises(XQueryDynamicError):
            evaluate('doc("missing.xml")')

    def test_stream_requires_registry(self):
        with pytest.raises(XQueryDynamicError):
            evaluate('stream("s")')

    def test_error_function(self):
        with pytest.raises(XQueryDynamicError, match="boom"):
            evaluate('error("boom")')


class TestConstructorFunctions:
    def test_xs_datetime(self, ctx):
        assert evaluate('xs:dateTime("2003-01-01T00:00:00")', ctx) == [
            XSDateTime.parse("2003-01-01T00:00:00")
        ]

    def test_xs_datetime_now_string(self, ctx):
        assert evaluate('xs:dateTime("now")', ctx) == [ctx.now]

    def test_duration_constructors(self, ctx):
        for fn in ("xs:duration", "xdt:dayTimeDuration"):
            out = evaluate(f'{fn}("PT90S")', ctx)
            assert out[0].seconds == 90

    def test_numeric_constructors(self):
        assert evaluate('xs:integer("42")') == [42]
        assert evaluate('xs:decimal("1.5")') == [1.5]
        assert evaluate("xs:string(42)") == ["42"]
        assert evaluate('xs:boolean("")') == [False]

    def test_arity_checking(self):
        with pytest.raises(XQueryTypeError):
            evaluate("count()")

    def test_fn_prefix_accepted(self):
        assert evaluate("fn:count((1, 2))") == [2]


class TestVtAccessors:
    def test_explicit_lifespan(self, ctx):
        context = ctx
        context.register_document(
            "v.xml",
            parse_document(
                '<r><e vtFrom="2003-01-01T00:00:00" vtTo="2003-02-01T00:00:00"/></r>'
            ),
        )
        assert evaluate('vtFrom(doc("v.xml")//e)', context) == [
            XSDateTime.parse("2003-01-01T00:00:00")
        ]
        assert evaluate('vtTo(doc("v.xml")//e)', context) == [
            XSDateTime.parse("2003-02-01T00:00:00")
        ]

    def test_now_endpoint_resolves(self, ctx):
        ctx.register_document(
            "w.xml",
            parse_document('<r><e vtFrom="2003-01-01T00:00:00" vtTo="now"/></r>'),
        )
        assert evaluate('vtTo(doc("w.xml")//e)', ctx) == [ctx.now]

    def test_lifespan_propagates_from_children(self, ctx):
        ctx.register_document(
            "p.xml",
            parse_document(
                "<r><parent>"
                '<c vtFrom="2003-01-05T00:00:00" vtTo="2003-01-10T00:00:00"/>'
                '<c vtFrom="2003-01-01T00:00:00" vtTo="2003-01-07T00:00:00"/>'
                "</parent></r>"
            ),
        )
        assert evaluate('vtFrom(doc("p.xml")//parent)', ctx) == [
            XSDateTime.parse("2003-01-01T00:00:00")
        ]
        assert evaluate('vtTo(doc("p.xml")//parent)', ctx) == [
            XSDateTime.parse("2003-01-10T00:00:00")
        ]

    def test_leaf_defaults_to_start_now(self, ctx):
        ctx.register_document("l.xml", parse_document("<r><leaf/></r>"))
        assert evaluate('vtTo(doc("l.xml")//leaf)', ctx) == [ctx.now]

    def test_event_valid_time(self, ctx):
        ctx.register_document(
            "e.xml",
            parse_document('<r><ev validTime="2003-03-03T03:03:03"/></r>'),
        )
        assert evaluate('vtFrom(doc("e.xml")//ev)', ctx) == evaluate(
            'vtTo(doc("e.xml")//ev)', ctx
        )
