"""Tests for the XMark substrate (generator, schema, queries)."""

import pytest

from repro import Fragmenter, Strategy
from repro.dom import serialize
from repro.temporal import XSDateTime
from repro.xmark import (
    ALL_QUERIES,
    PAPER_QUERIES,
    ScaleProfile,
    XMarkGenerator,
    auction_tag_structure,
    generate_auction_document,
)


class TestScaleProfile:
    def test_factor_one_matches_xmark(self):
        profile = ScaleProfile.for_factor(1.0)
        assert profile.people == 25_500
        assert profile.items == 21_750
        assert profile.open_auctions == 12_000
        assert profile.closed_auctions == 9_750
        assert profile.categories == 1_000

    def test_factor_zero_is_minimal(self):
        profile = ScaleProfile.for_factor(0.0)
        assert profile.people == 25
        assert profile.closed_auctions == 9

    def test_monotone_in_factor(self):
        small, big = ScaleProfile.for_factor(0.01), ScaleProfile.for_factor(0.1)
        assert small.people < big.people
        assert small.items < big.items


class TestGenerator:
    def test_deterministic(self):
        a = serialize(generate_auction_document(0.0, seed=1))
        b = serialize(generate_auction_document(0.0, seed=1))
        assert a == b

    def test_seed_changes_content(self):
        a = serialize(generate_auction_document(0.0, seed=1))
        b = serialize(generate_auction_document(0.0, seed=2))
        assert a != b

    def test_document_shape(self):
        site = generate_auction_document(0.0).document_element
        sections = [c.tag for c in site.child_elements()]
        assert sections == [
            "regions",
            "categories",
            "catgraph",
            "people",
            "open_auctions",
            "closed_auctions",
        ]

    def test_cardinalities_respected(self):
        document = generate_auction_document(0.002)
        profile = ScaleProfile.for_factor(0.002)
        site = document.document_element
        assert len(site.first("people").child_elements("person")) == profile.people
        assert (
            len(site.first("closed_auctions").child_elements("closed_auction"))
            == profile.closed_auctions
        )

    def test_person_ids_sequential(self):
        site = generate_auction_document(0.0).document_element
        people = site.first("people").child_elements("person")
        assert people[0].attrs["id"] == "person0"
        assert people[-1].attrs["id"] == f"person{len(people) - 1}"

    def test_size_grows_with_scale(self):
        small = len(serialize(generate_auction_document(0.0)))
        large = len(serialize(generate_auction_document(0.005)))
        assert large > 2 * small

    def test_prices_have_tail(self):
        site = generate_auction_document(0.005).document_element
        prices = [
            float(a.first("price").text())
            for a in site.first("closed_auctions").child_elements()
        ]
        assert any(p < 40 for p in prices)
        assert any(p >= 40 for p in prices)


class TestSchemaConformance:
    def test_generated_document_fragments_strictly(self):
        # The strict fragmenter validates every path against the schema.
        structure = auction_tag_structure()
        document = generate_auction_document(0.0)
        fillers = Fragmenter(structure).fragment(
            document, XSDateTime.parse("2003-01-01T00:00:00")
        )
        assert fillers[0].content.tag == "site"
        tags = {f.content.tag for f in fillers}
        assert {"item", "person", "open_auction", "closed_auction", "category"} <= tags

    def test_fragment_sizes_reasonable(self):
        structure = auction_tag_structure()
        document = generate_auction_document(0.0)
        fillers = Fragmenter(structure).fragment(
            document, XSDateTime.parse("2003-01-01T00:00:00")
        )
        # Paper §1: "reasonable fragmentation" — no giant fragments besides
        # possibly the root skeleton.
        non_root = [f.wire_size for f in fillers if f.filler_id != 0]
        assert max(non_root) < 4096


class TestQueries:
    def test_q1_returns_person0_name(self, tiny_auction_engine):
        result = tiny_auction_engine.execute(PAPER_QUERIES["Q1"])
        assert len(result) == 1

    def test_q2_one_increase_per_auction(self, tiny_auction_engine):
        result = tiny_auction_engine.execute(PAPER_QUERIES["Q2"])
        assert all(e.tag == "increase" for e in result)
        assert len(result) == 12  # minimal profile open auctions

    def test_q5_counts_expensive_sales(self, tiny_auction_engine):
        result = tiny_auction_engine.execute(PAPER_QUERIES["Q5"])
        assert len(result) == 1
        assert 0 <= result[0] <= 9

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_all_queries_strategy_equivalent(self, tiny_auction_engine, name):
        query = ALL_QUERIES[name]
        outputs = []
        for strategy in (Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ):
            result = tiny_auction_engine.execute(query, strategy=strategy)
            outputs.append(
                [serialize(i) if hasattr(i, "string_value") else str(i) for i in result]
            )
        assert outputs[0] == outputs[1] == outputs[2]

    def test_q6_matches_region_total(self, tiny_auction_engine):
        count = tiny_auction_engine.execute(ALL_QUERIES["Q6"])[0]
        assert count == ScaleProfile.for_factor(0.0).items


class TestGeneratorInternals:
    def test_dates_well_formed(self):
        generator = XMarkGenerator(0.0, seed=5)
        for _ in range(50):
            month, day, year = generator._date().split("/")
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28
            assert 1998 <= int(year) <= 2003

    def test_person_name_two_tokens(self):
        generator = XMarkGenerator(0.0, seed=5)
        assert len(generator._person_name().split()) == 2
