"""Tests for the XQuery evaluator (repro.xquery.evaluator)."""

import pytest

from repro.dom import Element, parse_document, serialize
from repro.temporal import XSDateTime, XSDuration
from repro.xquery import Context, evaluate
from repro.xquery.errors import (
    XQueryDynamicError,
    XQueryNameError,
    XQueryTypeError,
)


@pytest.fixture()
def ctx():
    context = Context(now=XSDateTime.parse("2003-12-15T00:00:00"))
    context.register_document(
        "t.xml",
        parse_document(
            '<site><a id="1"><b>10</b><b>20</b></a>'
            '<a id="2"><b>30</b><c note="x">hey</c></a></site>'
        ),
    )
    return context


class TestBasics:
    def test_literals(self):
        assert evaluate("42") == [42]
        assert evaluate("3.5") == [3.5]
        assert evaluate('"hi"') == ["hi"]

    def test_arithmetic(self):
        assert evaluate("1 + 2 * 3") == [7]
        assert evaluate("(1 + 2) * 3") == [9]
        assert evaluate("7 mod 2") == [1]
        assert evaluate("7 idiv 2") == [3]
        assert evaluate("1 div 2") == [0.5]

    def test_unary(self):
        assert evaluate("-(2 + 3)") == [-5]
        assert evaluate("--2") == [2]

    def test_division_by_zero(self):
        with pytest.raises(XQueryDynamicError):
            evaluate("1 div 0")

    def test_empty_propagates_through_arithmetic(self):
        assert evaluate("() + 1") == []

    def test_range(self):
        assert evaluate("1 to 4") == [1, 2, 3, 4]
        assert evaluate("3 to 1") == []

    def test_sequence_flattening(self):
        assert evaluate("((1, 2), (), (3))") == [1, 2, 3]

    def test_if_uses_ebv(self):
        assert evaluate('if (0) then "t" else "f"') == ["f"]
        assert evaluate('if ("x") then "t" else "f"') == ["t"]
        assert evaluate('if (()) then "t" else "f"') == ["f"]

    def test_string_arithmetic_coerces(self):
        assert evaluate('"4" + 1') == [5]

    def test_variables(self):
        context = Context(variables={"x": [21]})
        assert evaluate("$x * 2", context) == [42]

    def test_undefined_variable(self):
        with pytest.raises(XQueryNameError):
            evaluate("$nope")

    def test_undefined_function(self):
        with pytest.raises(XQueryNameError):
            evaluate("no_such_fn()")


class TestComparisons:
    def test_general_existential(self):
        assert evaluate("(1, 2, 3) = 2") == [True]
        assert evaluate("(1, 2) = (3, 4)") == [False]
        assert evaluate("(1, 2) != (2)") == [True]  # 1 != 2

    def test_empty_comparison_false(self):
        assert evaluate("() = 1") == [False]

    def test_numeric_string_promotion(self):
        assert evaluate('"10" > 9') == [True]
        assert evaluate('10 = "10"') == [True]

    def test_string_comparison(self):
        assert evaluate('"abc" < "abd"') == [True]

    def test_value_comparison_singleton(self):
        assert evaluate("2 eq 2") == [True]
        assert evaluate("() eq 2") == []
        with pytest.raises(XQueryTypeError):
            evaluate("(1, 2) eq 2")

    def test_datetime_comparison(self):
        assert evaluate(
            'xs:dateTime("2003-01-01T00:00:00") lt xs:dateTime("2003-01-02T00:00:00")'
        ) == [True]

    def test_datetime_string_coercion(self):
        assert evaluate('"2003-01-01T00:00:00" lt xs:dateTime("2003-01-02T00:00:00")') == [True]

    def test_boolean_logic_short_circuit(self):
        assert evaluate("1 = 1 or 1 div 0") == [True]
        assert evaluate("1 = 2 and 1 div 0") == [False]

    def test_is_identity(self, ctx):
        assert evaluate('doc("t.xml")/site is doc("t.xml")/site', ctx) == [True]

    def test_node_order_comparisons(self, ctx):
        assert evaluate('doc("t.xml")//b[1] << doc("t.xml")//c', ctx) == [True]
        assert evaluate('doc("t.xml")//c >> doc("t.xml")//b[1]', ctx) == [True]
        assert evaluate('doc("t.xml")//c << doc("t.xml")//b[1]', ctx) == [False]
        assert evaluate('() << doc("t.xml")//c', ctx) == []
        with pytest.raises(XQueryTypeError):
            evaluate('1 << doc("t.xml")//c', ctx)


class TestPaths:
    def test_child_steps(self, ctx):
        assert len(evaluate('doc("t.xml")/site/a', ctx)) == 2

    def test_descendant(self, ctx):
        assert len(evaluate('doc("t.xml")//b', ctx)) == 3

    def test_attribute(self, ctx):
        assert [a.value for a in evaluate('doc("t.xml")/site/a/@id', ctx)] == ["1", "2"]

    def test_descendant_attribute(self, ctx):
        assert len(evaluate('doc("t.xml")//@id', ctx)) == 2

    def test_wildcard(self, ctx):
        assert len(evaluate('doc("t.xml")/site/*', ctx)) == 2

    def test_text_kind_test(self, ctx):
        assert evaluate('doc("t.xml")//c/text()', ctx)[0].text == "hey"

    def test_positional_predicate(self, ctx):
        assert evaluate('doc("t.xml")//b[2]', ctx)[0].string_value() == "20"

    def test_position_last(self, ctx):
        out = evaluate('doc("t.xml")//a[@id="1"]/b[position() = last()]', ctx)
        assert [n.string_value() for n in out] == ["20"]

    def test_predicate_comparison(self, ctx):
        assert len(evaluate('doc("t.xml")//a[b = 30]', ctx)) == 1

    def test_predicate_per_parent_positions(self, ctx):
        # b[1] is evaluated per a-parent: two firsts.
        out = evaluate('doc("t.xml")//a/b[1]', ctx)
        assert [n.string_value() for n in out] == ["10", "30"]

    def test_parent_step(self, ctx):
        out = evaluate('doc("t.xml")//c/../@id', ctx)
        assert [a.value for a in out] == ["2"]

    def test_document_order_dedup(self, ctx):
        out = evaluate('(doc("t.xml")//b | doc("t.xml")//b)', ctx)
        assert len(out) == 3
        assert [n.string_value() for n in out] == ["10", "20", "30"]

    def test_intersect_except(self, ctx):
        assert len(evaluate('(doc("t.xml")//b intersect doc("t.xml")//b[2])', ctx)) == 1
        assert len(evaluate('(doc("t.xml")//b except doc("t.xml")//b[2])', ctx)) == 2

    def test_step_on_atomic_fails(self):
        with pytest.raises(XQueryTypeError):
            evaluate("(1)/a")

    def test_relative_path_needs_context(self):
        with pytest.raises(XQueryDynamicError):
            evaluate("a/b")


class TestFLWOR:
    def test_basic_for(self):
        assert evaluate("for $i in (1, 2, 3) return $i * 2") == [2, 4, 6]

    def test_let(self):
        assert evaluate("let $x := (1, 2) return count($x)") == [2]

    def test_where(self):
        assert evaluate("for $i in 1 to 10 where $i mod 2 = 0 return $i") == [2, 4, 6, 8, 10]

    def test_at_position(self):
        assert evaluate('for $x at $i in ("a", "b") return $i') == [1, 2]

    def test_nested_for_cross_product(self):
        out = evaluate("for $i in (1, 2), $j in (10, 20) return $i + $j")
        assert out == [11, 21, 12, 22]

    def test_order_by(self):
        assert evaluate("for $i in (3, 1, 2) order by $i return $i") == [1, 2, 3]

    def test_order_by_descending(self):
        assert evaluate("for $i in (3, 1, 2) order by $i descending return $i") == [3, 2, 1]

    def test_order_by_string_key(self):
        out = evaluate('for $s in ("b", "a", "c") order by $s return $s')
        assert out == ["a", "b", "c"]

    def test_order_by_multiple_keys(self):
        out = evaluate(
            "for $p in ((1, 2), (1, 1), (0, 9)) return $p"
        )  # sanity: sequences flatten
        assert len(out) == 6

    def test_order_by_empty_least(self):
        out = evaluate("for $i in (2, 1) order by (if ($i = 1) then () else $i) return $i")
        assert out == [1, 2]

    def test_order_by_empty_greatest(self):
        out = evaluate(
            "for $i in (2, 1) order by (if ($i = 1) then () else $i) "
            "empty greatest return $i"
        )
        assert out == [2, 1]

    def test_order_by_is_stable(self):
        # Equal keys keep input order (our sort is a stable cmp sort).
        out = evaluate(
            'for $p in (("b", 1), ("a", 1), ("c", 1)) return $p'
        )
        assert len(out) == 6
        out = evaluate(
            "for $i in (31, 11, 21, 12) order by $i mod 10 return $i"
        )
        assert out == [31, 11, 21, 12]

    def test_stable_order_by_keyword(self):
        out = evaluate("for $i in (3, 1, 2) stable order by $i return $i")
        assert out == [1, 2, 3]

    def test_order_by_two_keys(self):
        out = evaluate(
            "for $i in (13, 22, 11, 21) "
            "order by $i mod 10, $i descending return $i"
        )
        assert out == [21, 11, 22, 13]

    def test_scoping_shadowing(self):
        out = evaluate("let $x := 1 return (for $x in (2, 3) return $x, $x)")
        assert out == [2, 3, 1]

    def test_quantified_every(self):
        assert evaluate("every $x in (2, 4) satisfies $x mod 2 = 0") == [True]
        assert evaluate("every $x in (2, 3) satisfies $x mod 2 = 0") == [False]

    def test_quantified_empty_domain(self):
        assert evaluate("some $x in () satisfies 1 = 1") == [False]
        assert evaluate("every $x in () satisfies 1 = 2") == [True]

    def test_quantified_multi_binding(self):
        assert evaluate("some $x in (1, 2), $y in (2, 3) satisfies $x = $y") == [True]


class TestConstructors:
    def test_direct_with_text(self):
        out = evaluate("<a>hi</a>")
        assert serialize(out[0]) == "<a>hi</a>"

    def test_enclosed_sequence_spacing(self):
        out = evaluate("<a>{ (1, 2, 3) }</a>")
        assert serialize(out[0]) == "<a>1 2 3</a>"

    def test_attribute_from_expression(self, ctx):
        out = evaluate('for $a in doc("t.xml")//a return <r id="{$a/@id}"/>', ctx)
        assert [e.attrs["id"] for e in out] == ["1", "2"]

    def test_content_copies_nodes(self, ctx):
        out = evaluate('<wrap>{ doc("t.xml")//c }</wrap>', ctx)
        assert serialize(out[0]) == '<wrap><c note="x">hey</c></wrap>'
        # the original tree is untouched
        assert len(evaluate('doc("t.xml")//c', ctx)) == 1

    def test_computed_element_and_attribute(self):
        out = evaluate('element note { attribute lang {"en"}, "hi" }')
        assert serialize(out[0]) == '<note lang="en">hi</note>'

    def test_computed_element_dynamic_name(self, ctx):
        out = evaluate('for $c in doc("t.xml")//c return element {name($c)} {"v"}', ctx)
        assert out[0].tag == "c"

    def test_attribute_wildcard_copy(self, ctx):
        out = evaluate('for $c in doc("t.xml")//c return <d>{ $c/@* }</d>', ctx)
        assert out[0].attrs == {"note": "x"}

    def test_text_constructor(self):
        out = evaluate('text { "plain" }')
        assert out[0].text == "plain"

    def test_nested_constructor_structure(self):
        out = evaluate("<a><b>{ 1 + 1 }</b></a>")
        assert serialize(out[0]) == "<a><b>2</b></a>"


class TestUserFunctions:
    def test_recursion(self):
        out = evaluate(
            "define function fact($n as xs:integer) as xs:integer"
            " { if ($n <= 1) then 1 else $n * fact($n - 1) }"
            " fact(5)"
        )
        assert out == [120]

    def test_sequence_parameter(self):
        out = evaluate(
            "define function total($xs as xs:integer*) { sum($xs) } total((1, 2, 3))"
        )
        assert out == [6]

    def test_wrong_arity(self):
        with pytest.raises(XQueryTypeError):
            evaluate("define function f($x) { $x } f(1, 2)")

    def test_functions_compose(self):
        out = evaluate(
            "define function inc($x) { $x + 1 }"
            "define function twice($x) { inc(inc($x)) }"
            "twice(40)"
        )
        assert out == [42]


class TestTemporalValues:
    def test_datetime_plus_duration(self, ctx):
        out = evaluate(
            'xs:dateTime("2003-10-23T12:23:34") + xdt:dayTimeDuration("PT1M")', ctx
        )
        assert str(out[0]) == "2003-10-23T12:24:34"

    def test_datetime_difference(self, ctx):
        out = evaluate(
            'xs:dateTime("2003-01-02T00:00:00") - xs:dateTime("2003-01-01T00:00:00")', ctx
        )
        assert out[0] == XSDuration.parse("P1D")

    def test_now_constant(self, ctx):
        assert evaluate("now", ctx, xcql=True) == [ctx.now]
        assert evaluate("current-dateTime()", ctx) == [ctx.now]

    def test_now_arithmetic(self, ctx):
        out = evaluate("now - PT1H", ctx, xcql=True)
        assert str(out[0]) == "2003-12-14T23:00:00"

    def test_duration_literal(self, ctx):
        assert evaluate("PT1M", ctx, xcql=True) == [XSDuration.parse("PT1M")]

    def test_datetime_literal(self, ctx):
        assert evaluate("2003-11-01", ctx, xcql=True) == [XSDateTime.parse("2003-11-01")]

    def test_interval_comparisons(self, ctx):
        assert evaluate(
            "xs:dateTime(\"2003-01-01\") before xs:dateTime(\"2003-01-02\")", ctx, xcql=True
        ) == [True]
        assert evaluate(
            "xs:dateTime(\"2003-01-02\") after xs:dateTime(\"2003-01-01\")", ctx, xcql=True
        ) == [True]

    def test_cast(self, ctx):
        assert evaluate('"5" cast as xs:integer', ctx) == [5]
        assert evaluate('"2003-01-01" cast as xs:dateTime', ctx) == [
            XSDateTime.parse("2003-01-01")
        ]


class TestInstanceOf:
    @pytest.mark.parametrize(
        "query, expected",
        [
            ("1 instance of xs:integer", True),
            ("1.5 instance of xs:integer", False),
            ("1.5 instance of xs:decimal", True),
            ('"a" instance of xs:string', True),
            ("(1, 2) instance of xs:integer*", True),
            ("(1, 2) instance of xs:integer", False),
            ("() instance of xs:integer?", True),
            ("() instance of xs:integer*", True),
            ("() instance of xs:integer+", False),
            ("true() instance of xs:boolean", True),
            ("1 instance of xs:boolean", False),
            ("<a/> instance of element()", True),
            ("<a/> instance of node()", True),
            ("<a/> instance of xs:anyAtomicType", False),
            ("(1, <a/>) instance of item()*", True),
        ],
    )
    def test_checks(self, query, expected):
        assert evaluate(query) == [expected]

    def test_node_kinds(self, ctx):
        assert evaluate('doc("t.xml")//b[1]/text() instance of text()', ctx) == [True]
        assert evaluate('doc("t.xml")//a[1]/@id instance of attribute()', ctx) == [True]
        assert evaluate('doc("t.xml") instance of document-node()', ctx) == [True]

    def test_temporal_types(self, ctx):
        assert evaluate(
            'xs:duration("PT1M") instance of xs:dayTimeDuration', ctx
        ) == [True]

    def test_unknown_type_rejected(self):
        with pytest.raises(XQueryTypeError):
            evaluate("1 instance of xs:mystery")
