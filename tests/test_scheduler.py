"""Tests for the continuous-query scheduler (paper §8 extension)."""

import pytest

from repro import (
    Channel,
    SimulatedClock,
    Strategy,
    StreamClient,
    StreamServer,
    TagStructure,
    XCQLEngine,
)
from repro.dom import Element, parse_document
from repro.fragments.model import Filler
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import ALL_TSIDS, QueryScheduler, dependencies_of
from repro.temporal.chrono import XSDateTime

from tests.conftest import CREDIT_TAG_STRUCTURE_XML


def make_engine():
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    engine = XCQLEngine()
    engine.register_stream("credit", structure)
    return engine


class TestDependencyDerivation:
    def test_qac_depends_on_whole_stream(self):
        engine = make_engine()
        compiled = engine.compile('count(stream("credit")//account)', Strategy.QAC)
        deps = dependencies_of(compiled)
        assert ("credit", ALL_TSIDS) in deps.streams

    def test_qac_plus_depends_on_tsid(self):
        engine = make_engine()
        compiled = engine.compile(
            'count(stream("credit")//transaction)', Strategy.QAC_PLUS
        )
        deps = dependencies_of(compiled)
        assert deps.streams == frozenset({("credit", 5)})

    def test_now_makes_time_sensitive(self):
        engine = make_engine()
        compiled = engine.compile(
            'stream("credit")//transaction?[now-PT1H, now]', Strategy.QAC_PLUS
        )
        assert dependencies_of(compiled).time_sensitive

    def test_without_now_not_time_sensitive(self):
        engine = make_engine()
        compiled = engine.compile(
            'count(stream("credit")//transaction)', Strategy.QAC_PLUS
        )
        assert not dependencies_of(compiled).time_sensitive

    def test_caq_depends_on_whole_stream(self):
        engine = make_engine()
        compiled = engine.compile('count(stream("credit")//account)', Strategy.CAQ)
        deps = dependencies_of(compiled)
        assert ("credit", ALL_TSIDS) in deps.streams

    def test_touches(self):
        engine = make_engine()
        deps = dependencies_of(
            engine.compile('count(stream("credit")//transaction)', Strategy.QAC_PLUS)
        )
        assert deps.touches("credit", {5})
        assert not deps.touches("credit", {4})
        assert not deps.touches("other", {5})

    def test_user_function_bodies_are_visited(self):
        engine = make_engine()
        compiled = engine.compile(
            'define function txns() { stream("credit")//transaction } '
            "count(txns())",
            Strategy.QAC_PLUS,
        )
        deps = dependencies_of(compiled)
        assert ("credit", ALL_TSIDS) in deps.streams

    def test_time_sensitivity_inside_user_function(self):
        engine = make_engine()
        compiled = engine.compile(
            "define function horizon() { now - PT1H } "
            'count(stream("credit")//transaction?[horizon(), now])',
            Strategy.QAC_PLUS,
        )
        assert dependencies_of(compiled).time_sensitive

    def test_nested_get_fillers_by_tsid_calls(self):
        # Two tsid accesses nested inside other call expressions: both
        # must surface as exact (stream, tsid) dependencies.
        engine = make_engine()
        compiled = engine.compile(
            'count(stream("credit")//transaction) + '
            'count(stream("credit")//creditLimit)',
            Strategy.QAC_PLUS,
        )
        deps = dependencies_of(compiled)
        assert deps.streams == frozenset({("credit", 5), ("credit", 4)})
        assert deps.touches("credit", {4})
        assert deps.touches("credit", {5})
        assert not deps.touches("credit", {3})


@pytest.fixture()
def scheduled_rig():
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    clock = SimulatedClock("2003-10-01T00:00:00")
    channel = Channel()
    scheduler = QueryScheduler()
    client = StreamClient(clock, scheduler=scheduler)
    client.tune_in(channel)
    server = StreamServer("credit", structure, channel, clock)
    server.announce()
    server.publish_document(
        parse_document(
            "<creditAccounts><account id='1'>"
            "<customer>X</customer><creditLimit>100</creditLimit>"
            "</account></creditAccounts>"
        )
    )
    return clock, server, client, scheduler


def transaction(txn_id: str, amount: str) -> Element:
    txn = Element("transaction", {"id": txn_id})
    vendor = Element("vendor")
    vendor.add_text("V")
    txn.append(vendor)
    amt = Element("amount")
    amt.add_text(amount)
    txn.append(amt)
    return txn


class TestScheduler:
    def test_first_poll_always_runs(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        query = client.register_query(
            'count(stream("credit")//transaction)', strategy=Strategy.QAC_PLUS
        )
        client.poll()
        assert scheduler.total_evaluations == 1

    def test_no_arrivals_no_time_skips(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        client.register_query(
            'count(stream("credit")//transaction)', strategy=Strategy.QAC_PLUS
        )
        client.poll()
        client.poll()
        client.poll()
        assert scheduler.total_evaluations == 1
        assert scheduler.total_skips == 2

    def test_relevant_arrival_triggers(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        query = client.register_query(
            'count(stream("credit")//transaction)',
            strategy=Strategy.QAC_PLUS,
            emit="full",
        )
        client.poll()
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t1", "5"))
        result = client.poll()
        assert scheduler.total_evaluations == 2
        assert result[query] == [1]

    def test_irrelevant_arrival_skipped(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        client.register_query(
            'count(stream("credit")//creditLimit)', strategy=Strategy.QAC_PLUS
        )
        client.poll()
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t1", "5"))  # tsid 5 + status
        client.poll()
        # creditLimit is tsid 4: the transaction arrival is irrelevant.
        assert scheduler.total_evaluations == 1
        assert scheduler.total_skips == 1

    def test_direct_engine_feed_notifies_scheduler(self, scheduled_rig):
        # Regression: ingest that bypasses the channel (engine.feed) used
        # to require hand-plumbed notify_arrival calls; the client now
        # subscribes its scheduler to the engine's arrival listeners.
        clock, server, client, scheduler = scheduled_rig
        from repro.fragments.model import Filler
        from repro.temporal import XSDateTime

        query = client.register_query(
            'count(stream("credit")//transaction)',
            strategy=Strategy.QAC_PLUS,
            emit="full",
        )
        client.poll()
        filler = Filler(
            999, 5, XSDateTime.parse("2003-10-01T01:00:00"), transaction("t9", "7")
        )
        client.engine.feed("credit", filler)
        result = client.poll()
        assert scheduler.total_evaluations == 2
        assert result[query] == [1]

    def test_shared_dependency_wakes_both_queries(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        counting = client.register_query(
            'count(stream("credit")//transaction)',
            strategy=Strategy.QAC_PLUS,
            emit="full",
        )
        flagging = client.register_query(
            'for $t in stream("credit")//transaction '
            "where $t/amount > 4 return $t/amount",
            strategy=Strategy.QAC_PLUS,
        )
        unrelated = client.register_query(
            'count(stream("credit")//creditLimit)', strategy=Strategy.QAC_PLUS
        )
        client.poll()
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t1", "5"))
        client.poll()
        # One arrival on tsid 5: both dependent queries re-ran, the
        # creditLimit query (tsid 4) was skipped.
        assert counting.stats()["evaluations"] == 2
        assert flagging.stats()["evaluations"] == 2
        assert unrelated.stats()["evaluations"] == 1
        assert unrelated.stats()["skips"] == 1

    def test_time_sensitive_reruns_on_clock_advance(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        client.register_query(
            'count(stream("credit")//transaction?[now-PT1H, now])',
            strategy=Strategy.QAC_PLUS,
        )
        client.poll()
        clock.advance("PT10M")
        client.poll()
        assert scheduler.total_evaluations == 2

    def test_time_insensitive_not_rerun_on_clock_advance(self, scheduled_rig):
        clock, server, client, scheduler = scheduled_rig
        client.register_query(
            'count(stream("credit")//transaction)', strategy=Strategy.QAC_PLUS
        )
        client.poll()
        clock.advance("PT10M")
        client.poll()
        assert scheduler.total_evaluations == 1

    def test_scheduled_results_match_unscheduled(self):
        """The scheduler is a pure optimization: emissions are identical."""
        structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)

        def run(with_scheduler: bool):
            clock = SimulatedClock("2003-10-01T00:00:00")
            channel = Channel()
            client = StreamClient(
                clock, scheduler=QueryScheduler() if with_scheduler else None
            )
            client.tune_in(channel)
            server = StreamServer("credit", structure, channel, clock)
            server.announce()
            server.publish_document(
                parse_document(
                    "<creditAccounts><account id='1'>"
                    "<customer>X</customer><creditLimit>100</creditLimit>"
                    "</account></creditAccounts>"
                )
            )
            query = client.register_query(
                'for $a in stream("credit")//account '
                "where sum($a/transaction?[now-PT1H,now]/amount) >= 10 "
                'return <hot id="{$a/@id}"/>',
                strategy=Strategy.QAC,
            )
            emitted: list[str] = []
            from repro.dom import serialize

            query.subscribe(lambda items: emitted.extend(serialize(i) for i in items))
            account_hole = server.hole_id(0, "account", "1")
            client.poll()
            server.emit_event(account_hole, transaction("t1", "4"))
            client.poll()
            server.emit_event(account_hole, transaction("t2", "8"))
            client.poll()
            clock.advance("PT2H")
            client.poll()
            return emitted

        assert run(True) == run(False)

    def test_stats(self, scheduled_rig):
        _clock, _server, client, scheduler = scheduled_rig
        source = 'count(stream("credit")//transaction)'
        query = client.register_query(source, strategy=Strategy.QAC_PLUS)
        client.poll()
        client.poll()
        stats = scheduler.stats()
        assert stats["evaluations"] == 1
        assert stats["skips"] == 1
        assert stats["queries"] == [
            {
                "source": source,
                "evaluations": 1,
                "skips": 1,
                "delta_runs": 0,
                "full_runs": 1,
                "shared_runs": 0,
                "automaton_runs": 0,
                "automaton_fallbacks": 0,
            }
        ]
        # The scheduler mirrors its skip decisions onto the query itself.
        assert query.stats()["evaluations"] == 1
        assert query.stats()["skips"] == 1


class TestListenerLifecycle:
    """watch/unwatch must neither leak listeners nor double-fire wakes."""

    @staticmethod
    def _txn(filler_id: int, hour: int, amount: int) -> Filler:
        content = parse_document(
            f'<transaction id="t{filler_id}"><amount>{amount}</amount>'
            "</transaction>"
        ).document_element
        return Filler(
            filler_id, 5, XSDateTime.parse(f"2003-10-01T{hour:02d}:00:00"), content
        )

    def test_watch_twice_registers_once(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        scheduler.watch_engine(engine)  # idempotent
        assert len(engine._arrival_listeners) == 1
        engine.feed("credit", [self._txn(10, 1, 5)])
        assert scheduler.stats()["notifications"] == 1

    def test_unwatch_stops_notifications_and_releases_listener(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        scheduler.unwatch_engine(engine)
        assert engine._arrival_listeners == []
        engine.feed("credit", [self._txn(11, 1, 5)])
        assert scheduler.stats()["notifications"] == 0

    def test_dropped_then_rewatched_fires_exactly_once(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        scheduler.unwatch_engine(engine)
        scheduler.watch_engine(engine)
        assert len(engine._arrival_listeners) == 1
        engine.feed("credit", [self._txn(12, 1, 5)])
        assert scheduler.stats()["notifications"] == 1

    def test_two_schedulers_fire_independently(self):
        engine = make_engine()
        first = QueryScheduler(engine)
        second = QueryScheduler(engine)
        engine.feed("credit", [self._txn(13, 1, 5)])
        assert first.stats()["notifications"] == 1
        assert second.stats()["notifications"] == 1
        first.unwatch_engine(engine)
        engine.feed("credit", [self._txn(14, 2, 5)])
        assert first.stats()["notifications"] == 1
        assert second.stats()["notifications"] == 2

    def test_same_tsid_batch_coalesces_to_one_notification(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        engine.feed("credit", [self._txn(20 + i, 1 + i, 5) for i in range(6)])
        assert scheduler.stats()["notifications"] == 1

    def test_mixed_tsids_fire_one_notification_each(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        limit_content = parse_document("<creditLimit>75</creditLimit>").document_element
        fillers = [self._txn(30 + i, 1 + i, 5) for i in range(3)]
        fillers.append(
            Filler(40, 4, XSDateTime.parse("2003-10-01T05:00:00"), limit_content)
        )
        engine.feed("credit", fillers)
        assert scheduler.stats()["notifications"] == 2

    def test_unwatched_scheduler_skips_without_arrival_signal(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        query = ContinuousQuery(
            engine, 'count(stream("credit")//transaction)', Strategy.QAC_PLUS
        )
        scheduler.add(query)
        now = XSDateTime.parse("2003-10-01T00:00:00")
        scheduler.poll(now)
        scheduler.unwatch_engine(engine)
        engine.feed("credit", [self._txn(50, 1, 5)])
        scheduler.poll(now)
        # The arrival was never seen, so the poll must skip (stale answer
        # is the documented contract for manual notification wiring).
        assert query.skips == 1


class TestWatermarkEpochs:
    """Routing-index watermark advancement across store history rewrites.

    The routed-skip optimization records ``cleared_seq`` and advances a
    skipped query's delta watermark past probed-and-missed arrivals.
    ``prune_before``/``clear`` bump the store's mutation epoch; a stale
    watermark must then be refused (the next run falls back to full) —
    silently accepting one would replay or lose retained annotations.
    """

    @staticmethod
    def _txn(filler_id: int, hour: int, amount: int) -> Filler:
        content = parse_document(
            f'<transaction id="t{filler_id}"><vendor>V</vendor>'
            f"<amount>{amount}</amount></transaction>"
        ).document_element
        return Filler(
            filler_id, 5, XSDateTime.parse(f"2003-10-01T{hour:02d}:00:00"), content
        )

    ROUTED = (
        'for $t in stream("credit")//transaction where $t/amount > 500 '
        "return <big>{$t/amount/text()}</big>"
    )
    NOW = XSDateTime.parse("2003-12-15T00:00:00")

    def _rig(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        query = ContinuousQuery(engine, self.ROUTED, strategy=Strategy.QAC_PLUS)
        scheduler.add(query)
        scheduler.poll(self.NOW)  # baseline: arms the delta watermark
        return engine, scheduler, query

    def test_routed_skip_advances_watermark(self):
        engine, scheduler, query = self._rig()
        store = engine.stores["credit"]
        engine.feed("credit", [self._txn(100 + i, 1 + i, 10) for i in range(3)])
        assert scheduler.poll(self.NOW)[query] == []
        # The probe covered every arrival: the watermark moved to the
        # store head without an evaluation.
        assert query.stats()["evaluations"] == 1
        assert query._watermark == store.watermark
        assert scheduler.stats()["routing"]["skips"] == 1
        # The advanced watermark is still live: a matching arrival runs
        # an ordinary delta over only the new filler.
        engine.feed("credit", [self._txn(200, 9, 900)])
        emitted = scheduler.poll(self.NOW)[query]
        assert [item.string_value() for item in emitted] == ["900"]
        assert query.stats()["delta_runs"] >= 1

    def test_prune_before_invalidates_cleared_seq(self):
        engine, scheduler, query = self._rig()
        store = engine.stores["credit"]
        engine.feed("credit", [self._txn(100, 1, 10)])
        baseline_watermark = query._watermark
        epoch_before = store.mutation_epoch
        # History rewrite between the probe and the next poll.
        store.prune_before(XSDateTime.parse("2003-10-01T02:00:00"))
        assert store.mutation_epoch == epoch_before + 1
        scheduler.poll(self.NOW)
        # advance_watermark saw the epoch move and refused: the probe's
        # cleared_seq belongs to the old history, so the watermark must
        # not advance into the new one.
        assert query._watermark == baseline_watermark
        # The query still answers correctly from a full re-run.
        engine.feed("credit", [self._txn(300, 10, 777)])
        emitted = scheduler.poll(self.NOW)[query]
        assert [item.string_value() for item in emitted] == ["777"]

    def test_clear_epoch_bump_forces_full_run(self):
        engine, scheduler, query = self._rig()
        store = engine.stores["credit"]
        engine.feed("credit", [self._txn(400, 1, 900)])
        assert [i.string_value() for i in scheduler.poll(self.NOW)[query]] == ["900"]
        full_before = query.stats()["full_runs"]
        store.clear()
        engine.feed("credit", [self._txn(401, 2, 901)])
        emitted = scheduler.poll(self.NOW)[query]
        # The wipe emptied the store, so only the new filler answers —
        # and it had to come from a full run, not a stale delta.
        assert [item.string_value() for item in emitted] == ["901"]
        assert query.stats()["full_runs"] == full_before + 1

    def test_advance_watermark_noop_on_epoch_mismatch(self):
        engine, _scheduler, query = self._rig()
        store = engine.stores["credit"]
        engine.feed("credit", [self._txn(500, 1, 900)])
        query.evaluate(self.NOW)
        seq, epoch = query._watermark
        store.prune_before(XSDateTime.parse("2003-10-01T02:00:00"))
        query.advance_watermark(seq + 50)
        assert query._watermark == (seq, epoch)

    def test_advance_watermark_never_rewinds(self):
        engine, _scheduler, query = self._rig()
        engine.feed("credit", [self._txn(600, 1, 900)])
        query.evaluate(self.NOW)
        seq, epoch = query._watermark
        query.advance_watermark(seq - 1)
        assert query._watermark == (seq, epoch)


class TestDeterministicDispatchOrder:
    """Grouped entries dispatch sorted by group key, not insertion order.

    The sharded coordinator compares per-shard answers positionally, so
    two schedulers holding the same queries must tick them in the same
    order no matter how registration interleaved.
    """

    SOURCES = [
        'for $t in stream("credit")//transaction where $t/amount > 500 '
        "return <big>{$t/amount/text()}</big>",
        'for $c in stream("credit")//creditLimit where $c > 1000 '
        "return <lim>{$c/text()}</lim>",
        'count(stream("credit")//customer)',
    ]

    def _order(self, sources):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        for source in sources:
            scheduler.add(ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS))
        return [entry.query.source for entry in scheduler._ordered_entries()]

    def test_single_member_groups_order_is_registration_invariant(self):
        forward = self._order(self.SOURCES)
        backward = self._order(list(reversed(self.SOURCES)))
        assert forward == backward

    def test_grouped_before_ungrouped_and_ties_by_registration(self):
        engine = make_engine()
        scheduler = QueryScheduler(engine)
        first = ContinuousQuery(engine, self.SOURCES[0], strategy=Strategy.QAC_PLUS)
        second = ContinuousQuery(engine, self.SOURCES[0], strategy=Strategy.QAC_PLUS)
        scheduler.add(second)
        scheduler.add(first)
        ordered = scheduler._ordered_entries()
        grouped = [entry for entry in ordered if entry.group_key is not None]
        ungrouped = [entry for entry in ordered if entry.group_key is None]
        # Grouped entries lead; same-group members keep registration order.
        assert ordered[: len(grouped)] == grouped
        assert [entry.query for entry in grouped[:2]] == [second, first]
        assert all(entry.group_key is None for entry in ungrouped)
