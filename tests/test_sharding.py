"""Differential and failure-mode tests for the sharded engine.

The load-bearing property is byte-identity: for any shard count, arrival
order, transport (``feed`` vs ``feed_raw``), shard-link kind (in-process
handle, pipe worker process, netproto remote worker), and worker
lifecycle (kills, respawns), the coordinator's merged emissions must
equal the single-process scheduler's — per tick as a multiset of
identity strings, and cumulatively.  The single-process arm is always a
fresh ``XCQLEngine`` + ``QueryScheduler`` over the same arrival history.

Remote workers are real ``run_worker`` hosts in child processes; shard
state is connection-scoped on the host, so one host can serve every net
shard in the suite.
"""

import multiprocessing
import random

import pytest

from repro import Fragmenter, Strategy, TagStructure, XCQLEngine
from repro.dom import Element, Text, parse_document
from repro.streams import netproto as proto
from repro.streams.continuous import ContinuousQuery, item_identity
from repro.streams.scheduler import QueryScheduler
from repro.streams.sharding import (
    NetLink,
    ShardedEngine,
    ShardFailure,
    shard_of,
)
from repro.streams.transport import (
    FILLER,
    TAG_STRUCTURE,
    Channel,
    Message,
    peek_filler,
)
from repro.fragments.model import Filler, make_hole
from repro.temporal.chrono import XSDateTime

from tests.conftest import CREDIT_TAG_STRUCTURE_XML, CREDIT_VIEW_XML

LEDGER_STRUCTURE_XML = """
<stream:structure>
  <tag type="snapshot" id="1" name="ledger">
    <tag type="event" id="2" name="txn">
      <tag type="snapshot" id="3" name="amount"/>
    </tag>
  </tag>
</stream:structure>
"""

QUERIES = [
    'for $t in stream("ledger")//txn where $t/amount > 40 '
    "return <hi>{$t/amount/text()}</hi>",
    'for $t in stream("ledger")//txn where $t/amount > 75 '
    "return <vip>{$t/amount/text()}</vip>",
    'for $t in stream("ledger")//txn where $t/amount < 15 '
    "return <low>{$t/amount/text()}</low>",
    # Not routable (no leading comparison): broadcast-wake coverage.
    'for $t in stream("ledger")//txn return <seen>{$t/@seq}</seen>',
]

NOW = XSDateTime.parse("2003-12-15T00:00:00")


def txn_filler(index: int, amount: float) -> Filler:
    content = Element("txn", {"seq": str(index)})
    amt = Element("amount")
    amt.append(Text(str(amount)))
    content.append(amt)
    return Filler(
        filler_id=1000 + index,
        tsid=2,
        valid_time=XSDateTime.parse("2003-01-01T00:00:00"),
        content=content,
    )


def ledger_batches(count: int = 24, batch: int = 6, seed: int = 7):
    rng = random.Random(seed)
    fillers = [txn_filler(i, rng.randrange(0, 100)) for i in range(count)]
    return [fillers[i : i + batch] for i in range(0, count, batch)]


def run_solo(batches, queries=QUERIES, raw_every=None):
    """Per-tick sorted identity lists from the single-process scheduler."""
    engine = XCQLEngine()
    engine.register_stream("ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML))
    scheduler = QueryScheduler(engine)
    standing = [
        ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS)
        for source in queries
    ]
    for query in standing:
        scheduler.add(query)
    scheduler.poll(NOW)  # baseline
    ticks = []
    for number, batch in enumerate(batches):
        if raw_every is not None and number % raw_every == 0:
            engine.feed_raw("ledger", [f.to_xml() for f in batch])
        else:
            engine.feed("ledger", batch)
        emitted = scheduler.poll(NOW)
        ticks.append(
            [
                sorted(item_identity(item) for item in emitted.get(query, []))
                for query in standing
            ]
        )
    return ticks


LINKS = ["inproc", "pipe", "net"]


def _net_worker_entry(conn):  # runs in a child process
    from repro.streams.net import run_worker

    run_worker(port=0, ready=conn.send)


def _start_net_worker():
    """Start a real remote-worker host; returns (process, address)."""
    context = multiprocessing.get_context()
    parent, child = context.Pipe()
    process = context.Process(
        target=_net_worker_entry, args=(child,), daemon=True
    )
    process.start()
    child.close()
    if not parent.poll(30):
        process.terminate()
        raise RuntimeError("worker host never reported its port")
    port = parent.recv()
    parent.close()
    return process, f"127.0.0.1:{port}"


@pytest.fixture(scope="module")
def worker_address():
    """One shared remote-worker host (shard state is per-connection)."""
    process, address = _start_net_worker()
    yield address
    process.terminate()
    process.join(5)


def link_kwargs(link, shards, worker_address=None):
    """ShardedEngine kwargs that realize one ShardLink kind everywhere."""
    if link == "inproc":
        return {"in_process": True}
    if link == "pipe":
        return {"in_process": False, "timeout": 30.0}
    return {
        "in_process": False,
        "workers": [worker_address] * shards,
        "timeout": 30.0,
    }


def run_sharded(batches, shards, queries=QUERIES, raw_every=None, **kw):
    """Per-tick sorted emission lists from a ShardedEngine."""
    engine = ShardedEngine(shards, in_process=kw.pop("in_process", True), **kw)
    try:
        engine.register_stream(
            "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
        )
        standing = [
            engine.add_query(source, strategy=Strategy.QAC_PLUS)
            for source in queries
        ]
        engine.tick(NOW)  # baseline
        ticks = []
        for number, batch in enumerate(batches):
            if raw_every is not None and number % raw_every == 0:
                engine.feed_raw("ledger", [f.to_xml() for f in batch])
            else:
                engine.feed("ledger", batch)
            results = engine.tick(NOW)
            ticks.append([sorted(results[query]) for query in standing])
        return ticks, engine.stats()
    finally:
        engine.close()


class TestShardKey:
    def test_deterministic_and_hash_free(self):
        # CRC-based: the same key maps to the same shard in any process.
        assert shard_of("ledger", 123, 4) == shard_of("ledger", 123, 4)
        assert 0 <= shard_of("ledger", 123, 4) < 4
        assert shard_of("ledger", 123, 1) == 0

    def test_spreads_across_shards(self):
        homes = {shard_of("ledger", i, 4) for i in range(64)}
        assert homes == {0, 1, 2, 3}


class TestPeekFiller:
    def test_reads_envelope_and_holes(self):
        filler = txn_filler(1, 50)
        filler.content.append(make_hole(77, 3))
        assert peek_filler(filler.to_xml()) == (1001, 2, [77])

    def test_single_quoted_attributes(self):
        text = "<filler id='9' tsid='2' validTime='2003-01-01T00:00:00'>" \
               "<txn/></filler>"
        assert peek_filler(text) == (9, 2, [])

    def test_rejects_non_fillers(self):
        with pytest.raises(ValueError):
            peek_filler("<txn/>")


class TestDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_identical_across_shard_counts(self, shards):
        batches = ledger_batches()
        solo = run_solo(batches)
        sharded, _ = run_sharded(batches, shards)
        assert sharded == solo

    @pytest.mark.parametrize("seed", [11, 23])
    def test_identical_across_arrival_orders(self, seed):
        batches = ledger_batches()
        flat = [filler for batch in batches for filler in batch]
        random.Random(seed).shuffle(flat)
        shuffled = [flat[i : i + 6] for i in range(0, len(flat), 6)]
        solo = run_solo(shuffled)
        sharded, _ = run_sharded(shuffled, 3)
        assert sharded == solo
        # Cumulative emissions are arrival-order invariant for event data.
        baseline, _ = run_sharded(batches, 3)
        cumulative = sorted(
            item for tick in sharded for per_query in tick for item in per_query
        )
        assert cumulative == sorted(
            item for tick in baseline for per_query in tick for item in per_query
        )

    @pytest.mark.parametrize("link", LINKS)
    def test_identical_across_link_kinds(self, link, worker_address):
        batches = ledger_batches()
        solo = run_solo(batches)
        sharded, stats = run_sharded(
            batches, 2, **link_kwargs(link, 2, worker_address)
        )
        assert sharded == solo
        assert [shard["kind"] for shard in stats["shards"]] == [link] * 2
        assert stats["coordinator"]["links"] == [link] * 2

    @pytest.mark.parametrize("link", LINKS)
    def test_identical_with_mixed_feed_and_feed_raw(self, link, worker_address):
        batches = ledger_batches()
        solo = run_solo(batches, raw_every=2)
        sharded, _ = run_sharded(
            batches, 2, raw_every=2, **link_kwargs(link, 2, worker_address)
        )
        assert sharded == solo

    def test_identical_with_compression_forced(self):
        batches = ledger_batches()
        solo = run_solo(batches)
        sharded, stats = run_sharded(batches, 2, compress_threshold=1)
        assert sharded == solo
        assert stats["coordinator"]["compressed_batches"] > 0

    def test_front_door_skips_quiet_shards(self):
        engine = ShardedEngine(2, in_process=True)
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            query = engine.add_query(QUERIES[1], strategy=Strategy.QAC_PLUS)
            engine.tick(NOW)
            polls_before = engine.stats()["coordinator"]["shard_polls"]
            engine.feed("ledger", [txn_filler(i, 10) for i in range(8)])
            assert engine.tick(NOW)[query] == []
            stats = engine.stats()["coordinator"]
            # Nothing can match 'amount > 75': no shard was polled.
            assert stats["shard_polls"] == polls_before
            assert stats["dispatch_skips"] > 0
        finally:
            engine.close()


class TestAdmission:
    def test_rejects_non_delta_safe_queries(self):
        engine = ShardedEngine(2, in_process=True)
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            join = (
                'for $a in stream("ledger")//txn, $b in stream("ledger")//txn '
                "where $a/amount = $b/amount return <p>{$a/@seq}</p>"
            )
            with pytest.raises(ValueError, match="not delta-safe"):
                engine.add_query(join)
        finally:
            engine.close()

    def test_rejects_unknown_stream_feeds(self):
        engine = ShardedEngine(2, in_process=True)
        try:
            with pytest.raises(KeyError):
                engine.feed("nope", [txn_filler(1, 1)])
            with pytest.raises(KeyError):
                engine.feed_raw("nope", ["<filler/>"])
        finally:
            engine.close()


class TestHoleColocation:
    def credit_fillers_parent_first(self):
        structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
        fragmenter = Fragmenter(structure)
        fillers = fragmenter.fragment_temporal_view(
            parse_document(CREDIT_VIEW_XML),
            XSDateTime.parse("1998-01-01T00:00:00"),
        )
        # The paper's server streams top-down; sort by tag depth to honor
        # the parent-before-child invariant the shard pinning relies on.
        depth = {1: 0, 2: 1, 3: 2, 4: 2, 5: 2, 6: 3, 7: 3, 8: 3}
        return structure, sorted(fillers, key=lambda f: depth[f.tsid])

    def test_holed_stream_stays_shard_local(self):
        structure, fillers = self.credit_fillers_parent_first()
        source = (
            'for $t in stream("credit")//transaction where $t/amount > 500 '
            "return <big>{$t/vendor/text()}</big>"
        )
        solo_engine = XCQLEngine()
        solo_engine.register_stream("credit", structure)
        scheduler = QueryScheduler(solo_engine)
        solo_query = ContinuousQuery(
            solo_engine, source, strategy=Strategy.QAC_PLUS
        )
        scheduler.add(solo_query)
        scheduler.poll(NOW)
        sharded = ShardedEngine(3, in_process=True)
        try:
            sharded.register_stream("credit", structure)
            query = sharded.add_query(source, strategy=Strategy.QAC_PLUS)
            sharded.tick(NOW)
            for start in range(0, len(fillers), 4):
                batch = fillers[start : start + 4]
                solo_engine.feed("credit", batch)
                sharded.feed("credit", batch)
                solo_emitted = sorted(
                    item_identity(item)
                    for item in scheduler.poll(NOW).get(solo_query, [])
                )
                assert sorted(sharded.tick(NOW)[query]) == solo_emitted
            # Parent-first arrival: every hole chain landed on one shard.
            assert (
                sharded.stats()["coordinator"]["dispatch_conflicts"] == 0
            )
        finally:
            sharded.close()

    def test_child_first_arrival_counts_a_conflict(self):
        engine = ShardedEngine(2, in_process=True)
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            # Pick a child id that hashes away from its parent's shard.
            parent = txn_filler(1, 50)
            parent_home = shard_of("ledger", parent.filler_id, 2)
            child_id = next(
                i for i in range(2000, 2100)
                if shard_of("ledger", i, 2) != parent_home
            )
            child = txn_filler(child_id - 1000, 60)
            assert child.filler_id == child_id
            parent.content.append(make_hole(child_id, 2))
            engine.feed("ledger", [child])  # child first: hashed home
            engine.feed("ledger", [parent])  # parent pin disagrees
            assert engine.stats()["coordinator"]["dispatch_conflicts"] == 1
        finally:
            engine.close()


class TestWorkerLifecycle:
    def test_killed_worker_recovers_via_journal(self):
        batches = ledger_batches(count=18, batch=6)
        solo = run_solo(batches)
        engine = ShardedEngine(2, timeout=30.0)
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            standing = [
                engine.add_query(source, strategy=Strategy.QAC_PLUS)
                for source in QUERIES
            ]
            engine.tick(NOW)
            ticks = []
            for number, batch in enumerate(batches):
                if number == 1:
                    # SIGKILL, not a clean stop: the worker gets no chance
                    # to flush or say goodbye.
                    engine._shards[0].process.kill()
                    engine._shards[0].process.join()
                engine.feed("ledger", batch)
                results = engine.tick(NOW)
                ticks.append([sorted(results[query]) for query in standing])
            stats = engine.stats()
            assert stats["coordinator"]["failovers"] == 1
            assert stats["shards"][0]["in_process"] is True
            # No emission lost, none duplicated — including the tick that
            # absorbed the crash.
            assert ticks == solo
        finally:
            engine.close()

    def test_respawn_shard_bootstraps_from_journal(self):
        batches = ledger_batches(count=18, batch=6)
        solo = run_solo(batches)
        engine = ShardedEngine(2, timeout=30.0)
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            standing = [
                engine.add_query(source, strategy=Strategy.QAC_PLUS)
                for source in QUERIES
            ]
            engine.tick(NOW)
            ticks = []
            for number, batch in enumerate(batches):
                if number == 2:
                    engine.respawn_shard(1)
                engine.feed("ledger", batch)
                results = engine.tick(NOW)
                ticks.append([sorted(results[query]) for query in standing])
            stats = engine.stats()
            assert stats["coordinator"]["respawns"] == 1
            assert all(not shard["in_process"] for shard in stats["shards"])
            assert ticks == solo
        finally:
            engine.close()

    def test_worker_mode_matches_solo(self):
        batches = ledger_batches(count=12, batch=6)
        solo = run_solo(batches)
        sharded, stats = run_sharded(batches, 2, in_process=False, timeout=30.0)
        assert sharded == solo
        assert all(not shard["in_process"] for shard in stats["shards"])


class TestRemoteWorkerLifecycle:
    def test_sigkilled_remote_worker_fails_over_then_respawns_remote(self):
        """The cross-host acceptance scenario: SIGKILL the remote worker
        mid-run, absorb the crash via journal failover (in-process
        degraded mode), then re-adopt a replacement host with
        ``respawn_shard(index, address=...)`` — byte-identical
        emissions throughout."""
        batches = ledger_batches(count=24, batch=6)
        solo = run_solo(batches)
        victim, victim_address = _start_net_worker()
        spare = None
        engine = ShardedEngine(2, workers=[victim_address], timeout=30.0)
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            standing = [
                engine.add_query(source, strategy=Strategy.QAC_PLUS)
                for source in QUERIES
            ]
            engine.tick(NOW)
            ticks = []
            for number, batch in enumerate(batches):
                if number == 1:
                    # SIGKILL the *host process*: the socket dies with no
                    # BYE, exactly like a machine dropping off the rack.
                    victim.kill()
                    victim.join()
                if number == 2:
                    spare, spare_address = _start_net_worker()
                    engine.respawn_shard(0, address=spare_address)
                engine.feed("ledger", batch)
                results = engine.tick(NOW)
                ticks.append([sorted(results[query]) for query in standing])
            stats = engine.stats()
            assert stats["coordinator"]["failovers"] == 1
            assert stats["coordinator"]["respawns"] == 1
            # Back on a remote worker, not stuck in degraded mode.
            assert stats["shards"][0]["kind"] == "net"
            assert stats["shards"][0]["link"]["address"] == spare_address
            assert stats["shards"][1]["kind"] == "pipe"
            assert ticks == solo
        finally:
            engine.close()
            for process in (victim, spare):
                if process is not None:
                    process.terminate()
                    process.join(5)

    def test_respawn_recycles_live_net_link_in_place(self, worker_address):
        """Respawning a healthy net shard reuses the connection (RESPAWN
        frame): the host discards that connection's shard state and the
        journal bootstrap rebuilds it — no reconnect, same link object."""
        batches = ledger_batches(count=18, batch=6)
        solo = run_solo(batches)
        engine = ShardedEngine(
            2, workers=[worker_address, worker_address], timeout=30.0
        )
        try:
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            standing = [
                engine.add_query(source, strategy=Strategy.QAC_PLUS)
                for source in QUERIES
            ]
            engine.tick(NOW)
            recycled = engine._shards[0]
            ticks = []
            for number, batch in enumerate(batches):
                if number == 1:
                    engine.respawn_shard(0)
                engine.feed("ledger", batch)
                results = engine.tick(NOW)
                ticks.append([sorted(results[query]) for query in standing])
            stats = engine.stats()
            assert stats["coordinator"]["respawns"] == 1
            assert engine._shards[0] is recycled  # recycled, not rebuilt
            assert [s["kind"] for s in stats["shards"]] == ["net", "net"]
            assert ticks == solo
        finally:
            engine.close()

    def test_v1_only_host_is_refused_by_the_link(self, worker_address,
                                                 monkeypatch):
        """A host that negotiates v1 has no WORKER frames to offer: the
        link says BYE and raises ShardFailure so the coordinator can fail
        over instead of wedging.  (Downgrading our *offer* to v1 makes
        the real host negotiate v1 — same wire outcome as an old host.)"""
        monkeypatch.setattr(proto, "PROTOCOL_VERSIONS", (1,))
        with pytest.raises(ShardFailure, match="needs v2"):
            NetLink(worker_address, {}, timeout=10.0)

    def test_unreachable_worker_fails_fast(self):
        with pytest.raises(ShardFailure, match="cannot reach"):
            NetLink("127.0.0.1:9", {}, timeout=2.0)
        with pytest.raises(ValueError, match="bad worker address"):
            NetLink("127.0.0.1:not-a-port", {}, timeout=2.0)

    def test_more_addresses_than_shards_rejected(self):
        with pytest.raises(ValueError, match="worker addresses"):
            ShardedEngine(1, workers=["a:1", "b:2"])


class TestClearingHouse:
    def test_channel_subscriber_ingest(self):
        structure_xml = LEDGER_STRUCTURE_XML.strip()
        engine = ShardedEngine(2, in_process=True)
        try:
            channel = Channel()
            channel.subscribe(engine.deliver)
            channel.publish(Message(TAG_STRUCTURE, "ledger", structure_xml))
            query = engine.add_query(QUERIES[0], strategy=Strategy.QAC_PLUS)
            engine.tick(NOW)
            for filler in [txn_filler(1, 90), txn_filler(2, 10)]:
                channel.publish(Message(FILLER, "ledger", filler.to_xml()))
            assert engine.tick(NOW)[query] == ["<hi>90</hi>"]
        finally:
            engine.close()

    def test_attached_lossy_channel_counters_surface_in_stats(self):
        """Satellite fix: drop/duplication tallies of a lossy feed are
        observable at the coordinator's front door, not only on the
        channel object someone happens to hold."""
        from repro.streams.transport import LossyChannel

        engine = ShardedEngine(2, in_process=True)
        try:
            # Register the schema out of band so a dropped announcement
            # cannot wedge ingest; the lossy feed carries only fillers.
            engine.register_stream(
                "ledger", TagStructure.from_xml(LEDGER_STRUCTURE_XML)
            )
            channel = LossyChannel(loss_rate=0.4, duplicate_rate=0.2, seed=11)
            engine.attach_channel(channel)
            for i in range(50):
                channel.publish(
                    Message(FILLER, "ledger", txn_filler(i, 60).to_xml())
                )
            stats = engine.stats()
            (entry,) = stats["channels"]
            assert entry["kind"] == "lossy"
            assert entry["dropped"] > 0
            assert entry["duplicated"] > 0
            delivered = stats["coordinator"]["delivered"]
            assert delivered[FILLER] == entry["delivered"] + entry["duplicated"]
            assert delivered[TAG_STRUCTURE] == 0
        finally:
            engine.close()

    def test_stats_shape(self):
        batches = ledger_batches(count=12, batch=6)
        _, stats = run_sharded(batches, 2)
        assert {"shards", "coordinator", "watermarks"} <= set(stats)
        assert {"links", "delivered", "timings"} <= set(stats["coordinator"])
        assert {"post", "wait", "merge"} <= set(stats["coordinator"]["timings"])
        assert stats["channels"] == []
        for shard in stats["shards"]:
            assert {"engine", "scheduler", "queries", "kind", "link"} <= set(
                shard
            )
            assert shard["link"]["kind"] == shard["kind"]
            # The merged automaton-host view travels with scheduler stats.
            assert "host" in shard["scheduler"]["automata"]
