"""Shared fixtures: the paper's credit-card stream and a tiny XMark load."""

from __future__ import annotations

import pytest

from repro import Fragmenter, FragmentStore, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.temporal import XSDateTime
from repro.xmark import AUCTION_STREAM, auction_tag_structure, generate_auction_document

CREDIT_TAG_STRUCTURE_XML = """
<stream:structure>
  <tag type="snapshot" id="1" name="creditAccounts">
    <tag type="temporal" id="2" name="account">
      <tag type="snapshot" id="3" name="customer"/>
      <tag type="temporal" id="4" name="creditLimit"/>
      <tag type="event" id="5" name="transaction">
        <tag type="snapshot" id="6" name="vendor"/>
        <tag type="temporal" id="7" name="status"/>
        <tag type="snapshot" id="8" name="amount"/>
      </tag>
    </tag>
  </tag>
</stream:structure>
"""

# The §3.1 temporal view, with a second account and the §4.2 "suspended"
# transaction scenario (fillers 3/4/5): transaction 23456 was charged on
# 2003-09-10 and suspended on 2003-11-01.
CREDIT_VIEW_XML = """
<creditAccounts>
  <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="now">
    <customer>John Smith</customer>
    <creditLimit vtFrom="1998-10-10T12:20:22" vtTo="2001-04-23T23:11:08">2000</creditLimit>
    <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
    <transaction id="12345" vtFrom="2003-10-23T12:23:34" vtTo="2003-10-23T12:23:34">
      <vendor>Southlake Pizza</vendor>
      <amount>38.20</amount>
      <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
    </transaction>
    <transaction id="23456" vtFrom="2003-09-10T14:30:12" vtTo="2003-09-10T14:30:12">
      <vendor>ResAris Contaceu</vendor>
      <amount>1200</amount>
      <status vtFrom="2003-09-10T14:30:13" vtTo="2003-11-01T10:12:56">charged</status>
      <status vtFrom="2003-11-01T10:12:56" vtTo="now">suspended</status>
    </transaction>
  </account>
  <account id="7777" vtFrom="2000-01-01T00:00:00" vtTo="now">
    <customer>Jane Roe</customer>
    <creditLimit vtFrom="2000-01-01T00:00:00" vtTo="now">800</creditLimit>
    <transaction id="90001" vtFrom="2003-11-20T10:00:00" vtTo="2003-11-20T10:00:00">
      <vendor>BigBox Hardware</vendor>
      <amount>900</amount>
      <status vtFrom="2003-11-20T10:00:01" vtTo="now">charged</status>
    </transaction>
  </account>
</creditAccounts>
"""

NOW_2003_12_15 = XSDateTime.parse("2003-12-15T00:00:00")


@pytest.fixture(scope="session")
def credit_structure() -> TagStructure:
    return TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)


@pytest.fixture()
def credit_view():
    return parse_document(CREDIT_VIEW_XML)


@pytest.fixture()
def credit_fillers(credit_structure, credit_view):
    fragmenter = Fragmenter(credit_structure)
    return fragmenter.fragment_temporal_view(
        credit_view, XSDateTime.parse("1998-01-01T00:00:00")
    )


@pytest.fixture()
def credit_store(credit_structure, credit_fillers) -> FragmentStore:
    store = FragmentStore(credit_structure)
    store.extend(credit_fillers)
    return store


@pytest.fixture()
def credit_engine(credit_structure, credit_fillers) -> XCQLEngine:
    engine = XCQLEngine(default_now=NOW_2003_12_15)
    engine.register_stream("credit", credit_structure)
    engine.feed("credit", credit_fillers)
    return engine


@pytest.fixture(scope="session")
def auction_structure() -> TagStructure:
    return auction_tag_structure()


@pytest.fixture(scope="session")
def tiny_auction_engine(auction_structure) -> XCQLEngine:
    """A minimal-scale auction stream shared across tests (read-only)."""
    engine = XCQLEngine(default_now=XSDateTime.parse("2003-06-01T00:00:00"))
    engine.register_stream(AUCTION_STREAM, auction_structure)
    fragmenter = Fragmenter(auction_structure)
    document = generate_auction_document(0.0)
    engine.feed(
        AUCTION_STREAM, fragmenter.fragment(document, XSDateTime.parse("2003-01-01T00:00:00"))
    )
    return engine
