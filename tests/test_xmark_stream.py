"""Tests for the live auction stream driver (repro.xmark.stream)."""

import pytest

from repro import Channel, SimulatedClock, Strategy, StreamClient
from repro.xmark import ALL_QUERIES, PAPER_QUERIES
from repro.xmark.stream import live_auction_setup


@pytest.fixture()
def market():
    clock = SimulatedClock("2004-06-14T09:00:00")
    channel = Channel()
    client = StreamClient(clock)
    client.tune_in(channel)
    server, driver = live_auction_setup(clock, channel)
    driver.publish_catalog()
    return clock, client, driver


class TestDriver:
    def test_catalog_reaches_client(self, market):
        clock, client, driver = market
        count = client.engine.execute(
            'count(stream("auction")//open_auction?[now])', now=clock.now()
        )
        assert count == [12]  # minimal profile

    def test_bids_create_versions(self, market):
        clock, client, driver = market
        hole = driver.place_bid()
        store = client.store_of("auction")
        assert len(store.versions_of(hole)) == 2

    def test_bid_increases_current(self, market):
        clock, client, driver = market
        hole = driver.place_bid()
        versions = client.store_of("auction").versions_of(hole)
        old_price = float(versions[0].first("current").text())
        new_price = float(versions[1].first("current").text())
        assert new_price > old_price
        assert len(versions[1].child_elements("bidder")) == (
            len(versions[0].child_elements("bidder")) + 1
        )

    def test_closings_append_events(self, market):
        clock, client, driver = market
        before = client.engine.execute(
            'count(stream("auction")//closed_auction)', now=clock.now()
        )[0]
        driver.close_auction()
        after = client.engine.execute(
            'count(stream("auction")//closed_auction)', now=clock.now()
        )[0]
        assert after == before + 1

    def test_run_loop(self, market):
        clock, client, driver = market
        driver.run(steps=10, close_every=5, advance_seconds=30)
        assert driver.bids_placed == 10
        assert driver.auctions_closed == 2

    def test_deterministic(self):
        def run_once():
            clock = SimulatedClock("2004-06-14T09:00:00")
            channel = Channel()
            client = StreamClient(clock)
            client.tune_in(channel)
            _server, driver = live_auction_setup(clock, channel, seed=99)
            driver.publish_catalog()
            driver.run(steps=8)
            return client.engine.execute(
                'sum(stream("auction")//open_auction?[now]/current)',
                now=clock.now(),
            )

        assert run_once() == run_once()


class TestContinuousXMarkQueries:
    def test_q2_over_live_stream(self, market):
        """Q2's 'first bidder increase' answers change as bids arrive."""
        clock, client, driver = market
        q2_current = (
            'for $b in stream("auction")/site/open_auctions/open_auction?[now] '
            "return <increase> { $b/bidder[1]/increase/text() } </increase>"
        )
        query = client.register_query(q2_current, strategy=Strategy.QAC_PLUS, emit="full")
        baseline = query.evaluate(clock.now())
        assert len(baseline) == 12
        driver.run(steps=6, close_every=0)
        client.poll()
        after = query.last_result
        assert len(after) == 12  # one row per auction, always

    def test_q5_grows_with_closings(self, market):
        clock, client, driver = market
        query = client.register_query(
            PAPER_QUERIES["Q5"], strategy=Strategy.QAC_PLUS, emit="full"
        )
        start = query.evaluate(clock.now())[0]
        for _ in range(20):
            driver.close_auction()
            clock.advance(60)
        end = query.evaluate(clock.now())[0]
        assert end >= start
        assert client.store_of("auction").filler_count > 0

    def test_strategy_agreement_on_live_state(self, market):
        clock, client, driver = market
        driver.run(steps=12, close_every=3)
        client.poll()
        for name in ("Q1", "Q5", "Q6"):
            outs = []
            for strategy in (Strategy.QAC, Strategy.QAC_PLUS, Strategy.CAQ):
                result = client.engine.execute(
                    ALL_QUERIES[name], strategy=strategy, now=clock.now()
                )
                from repro.dom import serialize

                outs.append(
                    [
                        serialize(i) if hasattr(i, "string_value") else i
                        for i in result
                    ]
                )
            assert outs[0] == outs[1] == outs[2], name
