"""Tests for clocks, transport, server, client and continuous queries."""

import pytest

from repro import (
    Channel,
    LossyChannel,
    SimulatedClock,
    Strategy,
    StreamClient,
    StreamServer,
    TagStructure,
)
from repro.dom import Element, parse_document, serialize
from repro.streams.clock import SystemClock
from repro.streams.server import StreamServerError
from repro.streams.transport import FILLER, Message
from repro.temporal import XSDateTime, XSDuration

from tests.conftest import CREDIT_TAG_STRUCTURE_XML


def credit_structure() -> TagStructure:
    return TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)


def text_el(tag: str, text: str) -> Element:
    element = Element(tag)
    element.add_text(text)
    return element


def transaction(txn_id: str, amount: str, status: str = "charged") -> Element:
    txn = Element("transaction", {"id": txn_id})
    txn.append(text_el("vendor", "V"))
    txn.append(text_el("amount", amount))
    txn.append(text_el("status", status))
    return txn


@pytest.fixture()
def rig():
    clock = SimulatedClock("2003-10-01T00:00:00")
    channel = Channel()
    client = StreamClient(clock)
    client.tune_in(channel)
    server = StreamServer("credit", credit_structure(), channel, clock)
    server.announce()
    server.publish_document(
        parse_document(
            "<creditAccounts><account id='1'>"
            "<customer>John</customer><creditLimit>1000</creditLimit>"
            "</account></creditAccounts>"
        )
    )
    return clock, channel, server, client


class TestClocks:
    def test_advance_by_duration(self):
        clock = SimulatedClock("2003-01-01T00:00:00")
        clock.advance("PT1H")
        assert str(clock.now()) == "2003-01-01T01:00:00"
        clock.advance(60)
        assert str(clock.now()) == "2003-01-01T01:01:00"
        clock.advance(XSDuration.parse("P1D"))
        assert clock.now().day == 2

    def test_set_absolute(self):
        clock = SimulatedClock("2003-01-01T00:00:00")
        clock.set("2003-06-01T00:00:00")
        assert clock.now().month == 6

    def test_no_time_travel(self):
        clock = SimulatedClock("2003-06-01T00:00:00")
        with pytest.raises(ValueError):
            clock.set("2003-01-01T00:00:00")
        with pytest.raises(ValueError):
            clock.advance("-PT1S")

    def test_system_clock_plausible(self):
        now = SystemClock().now()
        assert now.year >= 2024


class TestTransport:
    def test_fanout(self):
        channel = Channel()
        seen = []
        channel.subscribe(lambda m: seen.append(("a", m.payload)))
        channel.subscribe(lambda m: seen.append(("b", m.payload)))
        channel.publish(Message(FILLER, "s", "<x/>"))
        assert len(seen) == 2
        assert channel.published == 1
        assert channel.delivered == 2

    def test_unsubscribe(self):
        channel = Channel()
        hits = []
        callback = hits.append
        channel.subscribe(callback)
        channel.unsubscribe(callback)
        channel.publish(Message(FILLER, "s", "<x/>"))
        assert hits == []

    def test_lossy_drops_deterministically(self):
        def run(seed):
            channel = LossyChannel(loss_rate=0.5, seed=seed)
            got = []
            channel.subscribe(lambda m: got.append(m.payload))
            for i in range(100):
                channel.publish(Message(FILLER, "s", f"<x n='{i}'/>"))
            return got

        assert run(7) == run(7)
        assert 10 < len(run(7)) < 90

    def test_lossy_duplicates(self):
        channel = LossyChannel(duplicate_rate=0.99, seed=1)
        got = []
        channel.subscribe(lambda m: got.append(m.payload))
        channel.publish(Message(FILLER, "s", "<x/>"))
        assert len(got) == 2

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            LossyChannel(loss_rate=1.5)

    def test_message_wire_size(self):
        assert Message(FILLER, "s", "<x/>").wire_size == 4


class TestServer:
    def test_publish_reaches_client(self, rig):
        _clock, _channel, server, client = rig
        store = client.store_of("credit")
        assert store.fragment_count == 3  # root, account, creditLimit
        assert client.received_fillers == 3

    def test_update_fragment_creates_version(self, rig):
        clock, _channel, server, client = rig
        clock.advance("P1D")
        account_hole = server.hole_id(0, "account", "1")
        limit_hole = server.hole_id(account_hole, "creditLimit", "1")
        server.update_fragment(limit_hole, text_el("creditLimit", "9000"))
        versions = client.store_of("credit").versions_of(limit_hole)
        assert [v.text() for v in versions] == ["1000", "9000"]
        assert versions[0].attrs["vtTo"] == versions[1].attrs["vtFrom"]

    def test_emit_event_shared_hole(self, rig):
        clock, _channel, server, client = rig
        account_hole = server.hole_id(0, "account", "1")
        first = server.emit_event(account_hole, transaction("t1", "10"))
        clock.advance("PT1M")
        second = server.emit_event(account_hole, transaction("t2", "20"))
        assert first.filler_id == second.filler_id
        store = client.store_of("credit")
        assert len(store.versions_of(first.filler_id)) == 2

    def test_event_nested_status_becomes_filler(self, rig):
        _clock, _channel, server, client = rig
        account_hole = server.hole_id(0, "account", "1")
        emitted = server.emit_event(account_hole, transaction("t1", "10"))
        holes = emitted.holes()
        assert len(holes) == 1  # the status child
        status_versions = client.store_of("credit").versions_of(int(holes[0].attrs["id"]))
        assert [v.text() for v in status_versions] == ["charged"]

    def test_insert_and_delete_child(self, rig):
        clock, _channel, server, client = rig
        new_account = Element("account", {"id": "2"})
        new_account.append(text_el("customer", "Ada"))
        inserted = server.insert_child(0, new_account)
        store = client.store_of("credit")
        assert len(store.versions_of(0)[-1].child_elements("hole")) == 2
        clock.advance("PT1S")
        server.delete_child(0, inserted.filler_id)
        root_versions = store.versions_of(0)
        assert len(root_versions[-1].child_elements("hole")) == 1

    def test_delete_unknown_hole(self, rig):
        _clock, _channel, server, _client = rig
        with pytest.raises(StreamServerError):
            server.delete_child(0, 999)

    def test_repeat_fragment_is_idempotent(self, rig):
        _clock, _channel, server, client = rig
        before = client.store_of("credit").filler_count
        server.repeat_fragment(0)
        assert client.store_of("credit").filler_count == before

    def test_repeat_event_id_replays_all_events(self, rig):
        """A lost early event is recoverable: repeats cover the history."""
        clock, channel, server, client = rig
        account_hole = server.hole_id(0, "account", "1")
        first = server.emit_event(account_hole, transaction("t1", "10"))
        clock.advance("PT1M")
        server.emit_event(account_hole, transaction("t2", "20"))
        store = client.store_of("credit")
        # Simulate that t1 never arrived: rebuild the store without it.
        lost = [f for f in store._fillers if "t1" not in f.to_xml()]
        store.clear()
        store.extend(lost)
        assert len(store.versions_of(first.filler_id)) == 1
        server.repeat_fragment(first.filler_id)
        assert len(store.versions_of(first.filler_id)) == 2

    def test_update_unknown_fragment(self, rig):
        _clock, _channel, server, _client = rig
        with pytest.raises(StreamServerError):
            server.update_fragment(999, Element("creditLimit"))

    def test_emit_event_wrong_tag(self, rig):
        _clock, _channel, server, _client = rig
        account_hole = server.hole_id(0, "account", "1")
        with pytest.raises(StreamServerError):
            server.emit_event(account_hole, Element("creditLimit"))

    def test_hole_id_unknown(self, rig):
        _clock, _channel, server, _client = rig
        with pytest.raises(StreamServerError):
            server.hole_id(0, "transaction", "nope")

    def test_latest_content_copy(self, rig):
        _clock, _channel, server, _client = rig
        content = server.latest_content(0)
        content.append(Element("junk"))
        assert server.latest_content(0).first("junk") is None

    def test_byte_accounting(self, rig):
        _clock, _channel, server, client = rig
        assert server.sent_bytes == client.received_bytes
        assert server.sent_fillers == client.received_fillers


class TestLossRecovery:
    def test_repeats_fill_in_losses(self):
        clock = SimulatedClock("2003-10-01T00:00:00")
        channel = LossyChannel(loss_rate=0.4, seed=3)
        client = StreamClient(clock)
        client.tune_in(channel)
        server = StreamServer("credit", credit_structure(), channel, clock)
        server.announce()
        server.publish_document(
            parse_document(
                "<creditAccounts><account id='1'><customer>X</customer>"
                "<creditLimit>5</creditLimit></account></creditAccounts>"
            )
        )
        # Keep repeating the announcement and all fragments until the lossy
        # channel lets everything through (the paper's remedy for no-NACK
        # broadcast: servers repeat critical fragments).
        for _ in range(50):
            if (
                "credit" in client.engine.stores
                and client.store_of("credit").fragment_count == 3
            ):
                break
            server.announce()
            for filler_id in list(server._content):
                server.repeat_fragment(filler_id)
        assert client.store_of("credit").fragment_count == 3


class TestContinuousQueries:
    QUERY = (
        'for $a in stream("credit")//account '
        "where sum($a/transaction?[now-PT1H,now]/amount) >= 100 "
        'return <hot id="{$a/@id}"/>'
    )

    def test_delta_mode_emits_once(self, rig):
        clock, _channel, server, client = rig
        query = client.register_query(self.QUERY)
        hits = []
        query.subscribe(lambda items: hits.extend(items))
        account_hole = server.hole_id(0, "account", "1")
        client.poll()
        assert hits == []
        server.emit_event(account_hole, transaction("t1", "150"))
        client.poll()
        assert len(hits) == 1
        client.poll()  # unchanged state: no re-emission
        assert len(hits) == 1

    def test_window_slides_out(self, rig):
        clock, _channel, server, client = rig
        query = client.register_query(self.QUERY)
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t1", "150"))
        assert len(query.evaluate(clock.now())) == 1
        clock.advance("PT2H")
        assert query.evaluate(clock.now()) == []
        assert query.last_result == []

    def test_full_mode_reemits(self, rig):
        clock, _channel, server, client = rig
        query = client.register_query(self.QUERY, emit="full")
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t1", "150"))
        assert len(query.evaluate(clock.now())) == 1
        assert len(query.evaluate(clock.now())) == 1
        assert query.emitted_total == 2

    def test_reset_forgets_history(self, rig):
        clock, _channel, server, client = rig
        query = client.register_query(self.QUERY)
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t1", "150"))
        assert len(query.evaluate(clock.now())) == 1
        query.reset()
        assert len(query.evaluate(clock.now())) == 1

    def test_invalid_emit_mode(self, rig):
        _clock, _channel, _server, client = rig
        with pytest.raises(ValueError):
            client.register_query(self.QUERY, emit="sometimes")

    def test_pending_arrivals_flag(self, rig):
        _clock, _channel, server, client = rig
        client.poll()
        assert not client.has_pending_arrivals
        account_hole = server.hole_id(0, "account", "1")
        server.emit_event(account_hole, transaction("t9", "5"))
        assert client.has_pending_arrivals
        client.poll()
        assert not client.has_pending_arrivals

    def test_strategies_available(self, rig):
        _clock, _channel, server, client = rig
        query = client.register_query(self.QUERY, strategy=Strategy.CAQ)
        assert query.compiled.strategy is Strategy.CAQ

    def test_fillers_before_announcement_ignored(self):
        clock = SimulatedClock("2003-10-01T00:00:00")
        channel = Channel()
        client = StreamClient(clock)
        client.tune_in(channel)
        server = StreamServer("credit", credit_structure(), channel, clock)
        # No announce(): fillers arrive for an unknown stream.
        server.publish_document(
            parse_document(
                "<creditAccounts><account id='1'><customer>X</customer>"
                "<creditLimit>5</creditLimit></account></creditAccounts>"
            )
        )
        assert client.received_fillers == 0
        assert "credit" not in client.engine.stores
