"""Tests for filler model, fragmenter, store and reconstruction."""

import pytest

from repro.dom import Element, parse_document, serialize
from repro.fragments import (
    Filler,
    Fragmenter,
    FragmentStore,
    TagStructure,
    make_hole,
    parse_filler,
    temporalize,
    schema_driven_temporalize,
)
from repro.fragments.assemble import generate_reconstruction_query
from repro.fragments.fragmenter import FragmentationError
from repro.temporal import XSDateTime

T0 = XSDateTime.parse("1998-01-01T00:00:00")


class TestFillerModel:
    def test_envelope_round_trip(self):
        payload = Element("status")
        payload.add_text("charged")
        filler = Filler(200, 7, XSDateTime.parse("2003-10-23T12:23:35"), payload)
        text = filler.to_xml()
        assert 'id="200"' in text and 'tsid="7"' in text
        again = parse_filler(text)
        assert again.filler_id == 200
        assert again.tsid == 7
        assert again.valid_time == filler.valid_time
        assert serialize(again.content) == serialize(payload)

    def test_paper_filler_1(self):
        # The exact filler 1 of §4.2 parses.
        filler = parse_filler(
            '<filler id="100" tsid="5" validTime="2003-10-23T12:23:34">'
            '<transaction id="12345"><vendor> Southlake Pizza </vendor>'
            "<amount> $38.20 </amount>"
            '<hole id="200" tsid="7"/></transaction></filler>'
        )
        assert filler.hole_ids() == [200]
        assert filler.content.tag == "transaction"

    def test_holes_finds_nested(self):
        content = Element("a")
        inner = Element("b")
        inner.append(make_hole(9, 3))
        content.append(inner)
        content.append(make_hole(7, 2))
        filler = Filler(1, 1, T0, content)
        assert sorted(filler.hole_ids()) == [7, 9]

    def test_wire_size_positive(self):
        filler = Filler(1, 1, T0, Element("x"))
        assert filler.wire_size == len(filler.to_xml())

    @pytest.mark.parametrize(
        "bad",
        [
            "<notfiller/>",
            '<filler id="1" tsid="1" validTime="2003-01-01"/>',
            '<filler id="1" validTime="2003-01-01"><a/></filler>',
            '<filler id="1" tsid="1" validTime="2003-01-01"><a/><b/></filler>',
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_filler(bad)


class TestFragmenterSnapshot:
    def test_root_is_filler_zero(self, credit_structure):
        document = parse_document(
            "<creditAccounts><account id='1'><customer>X</customer>"
            "<creditLimit>100</creditLimit></account></creditAccounts>"
        )
        fillers = Fragmenter(credit_structure).fragment(document, T0)
        assert fillers[0].filler_id == 0
        assert fillers[0].content.tag == "creditAccounts"

    def test_fragments_at_declared_boundaries(self, credit_structure):
        document = parse_document(
            "<creditAccounts><account id='1'><customer>X</customer>"
            "<creditLimit>100</creditLimit></account></creditAccounts>"
        )
        fillers = Fragmenter(credit_structure).fragment(document, T0)
        tags = sorted(f.content.tag for f in fillers)
        assert tags == ["account", "creditAccounts", "creditLimit"]
        root = fillers[0].content
        assert [c.tag for c in root.child_elements()] == ["hole"]

    def test_snapshot_children_stay_embedded(self, credit_structure):
        document = parse_document(
            "<creditAccounts><account id='1'><customer>X</customer>"
            "</account></creditAccounts>"
        )
        fillers = Fragmenter(credit_structure).fragment(document, T0)
        account = next(f for f in fillers if f.content.tag == "account")
        assert account.content.first("customer") is not None

    def test_undeclared_tag_rejected_when_strict(self, credit_structure):
        document = parse_document(
            "<creditAccounts><bogus/></creditAccounts>"
        )
        with pytest.raises(FragmentationError):
            Fragmenter(credit_structure).fragment(document, T0)

    def test_undeclared_tag_kept_when_lenient(self, credit_structure):
        document = parse_document("<creditAccounts><bogus/></creditAccounts>")
        fillers = Fragmenter(credit_structure, strict=False).fragment(document, T0)
        assert fillers[0].content.first("bogus") is not None

    def test_wrong_root_rejected(self, credit_structure):
        with pytest.raises(FragmentationError):
            Fragmenter(credit_structure).fragment(parse_document("<zzz/>"), T0)

    def test_hole_registry(self, credit_structure):
        document = parse_document(
            "<creditAccounts><account id='77'><customer>X</customer>"
            "<creditLimit>1</creditLimit></account></creditAccounts>"
        )
        fragmenter = Fragmenter(credit_structure)
        fragmenter.fragment(document, T0)
        account_hole = fragmenter.hole_registry[(0, "account", "77")]
        assert (account_hole, "creditLimit", "77") in fragmenter.hole_registry

    def test_shared_event_holes(self, credit_structure):
        document = parse_document(
            "<creditAccounts><account id='1'>"
            "<transaction id='a'><vendor>v</vendor><amount>1</amount></transaction>"
            "<transaction id='b'><vendor>v</vendor><amount>2</amount></transaction>"
            "</account></creditAccounts>"
        )
        fragmenter = Fragmenter(credit_structure, shared_event_holes=True)
        fillers = fragmenter.fragment(document, T0)
        transactions = [f for f in fillers if f.content.tag == "transaction"]
        assert len(transactions) == 2
        assert transactions[0].filler_id == transactions[1].filler_id
        account = next(f for f in fillers if f.content.tag == "account")
        assert len(account.holes()) == 1

    def test_distinct_event_holes_by_default(self, credit_structure):
        document = parse_document(
            "<creditAccounts><account id='1'>"
            "<transaction id='a'><vendor>v</vendor><amount>1</amount></transaction>"
            "<transaction id='b'><vendor>v</vendor><amount>2</amount></transaction>"
            "</account></creditAccounts>"
        )
        fillers = Fragmenter(credit_structure).fragment(document, T0)
        transactions = [f for f in fillers if f.content.tag == "transaction"]
        assert transactions[0].filler_id != transactions[1].filler_id


class TestFragmenterTemporalView:
    def test_versions_share_filler_id(self, credit_structure, credit_view):
        fillers = Fragmenter(credit_structure).fragment_temporal_view(credit_view, T0)
        limits = [f for f in fillers if f.content.tag == "creditLimit"]
        smith_limits = [f for f in limits if f.content.text().strip() in ("2000", "5000")]
        assert smith_limits[0].filler_id == smith_limits[1].filler_id

    def test_version_times_from_vtfrom(self, credit_structure, credit_view):
        fillers = Fragmenter(credit_structure).fragment_temporal_view(credit_view, T0)
        second_limit = next(
            f for f in fillers if f.content.tag == "creditLimit" and "5000" in f.content.text()
        )
        assert str(second_limit.valid_time) == "2001-04-23T23:11:08"

    def test_lifespan_attrs_stripped_from_payload(self, credit_structure, credit_view):
        fillers = Fragmenter(credit_structure).fragment_temporal_view(credit_view, T0)
        for filler in fillers:
            assert "vtFrom" not in filler.content.attrs
            assert "vtTo" not in filler.content.attrs


class TestStore:
    def test_append_and_lookup(self, credit_store):
        assert credit_store.filler_count == 13
        assert credit_store.fragment_count >= 9

    def test_duplicate_dropped(self, credit_structure, credit_fillers):
        store = FragmentStore(credit_structure)
        store.extend(credit_fillers)
        before = store.filler_count
        assert store.append(credit_fillers[3]) is False
        assert store.filler_count == before

    def test_distinct_content_same_time_kept(self, credit_structure):
        store = FragmentStore(credit_structure)
        a = Element("transaction")
        a.add_text("one")
        b = Element("transaction")
        b.add_text("two")
        assert store.append(Filler(5, 5, T0, a))
        assert store.append(Filler(5, 5, T0, b))
        assert len(store.fillers_of(5)) == 2

    def test_versions_sorted_by_time(self, credit_structure):
        store = FragmentStore(credit_structure)
        late = Element("creditLimit")
        late.add_text("200")
        early = Element("creditLimit")
        early.add_text("100")
        store.append(Filler(4, 4, XSDateTime.parse("2003-02-01T00:00:00"), late))
        store.append(Filler(4, 4, XSDateTime.parse("2003-01-01T00:00:00"), early))
        versions = store.versions_of(4)
        assert [v.text() for v in versions] == ["100", "200"]

    def test_temporal_annotation_chain(self, credit_structure):
        store = FragmentStore(credit_structure)
        for month, value in ((1, "100"), (2, "200")):
            limit = Element("creditLimit")
            limit.add_text(value)
            store.append(Filler(4, 4, XSDateTime(2003, month, 1), limit))
        first, second = store.versions_of(4)
        assert first.attrs["vtFrom"] == "2003-01-01T00:00:00"
        assert first.attrs["vtTo"] == "2003-02-01T00:00:00"
        assert second.attrs["vtTo"] == "now"

    def test_event_annotation_is_point(self, credit_structure):
        store = FragmentStore(credit_structure)
        txn = Element("transaction")
        store.append(Filler(9, 5, XSDateTime.parse("2003-03-03T03:03:03"), txn))
        version = store.versions_of(9)[0]
        assert version.attrs["vtFrom"] == version.attrs["vtTo"] == "2003-03-03T03:03:03"

    def test_snapshot_root_not_annotated(self, credit_store):
        root = credit_store.versions_of(0)[0]
        assert "vtFrom" not in root.attrs

    def test_get_fillers_wrapper(self, credit_store):
        wrapper = credit_store.get_fillers(0)
        assert wrapper.tag == "filler"
        assert wrapper.attrs["id"] == "0"
        assert wrapper.children[0].tag == "creditAccounts"

    def test_get_fillers_unknown_id_empty(self, credit_store):
        assert credit_store.get_fillers(999).children == []

    def test_index_and_scan_agree(self, credit_structure, credit_fillers):
        indexed = FragmentStore(credit_structure, use_index=True)
        scanned = FragmentStore(credit_structure, use_index=False)
        indexed.extend(credit_fillers)
        scanned.extend(credit_fillers)
        for filler_id in {f.filler_id for f in credit_fillers}:
            assert [serialize(v) for v in indexed.versions_of(filler_id)] == [
                serialize(v) for v in scanned.versions_of(filler_id)
            ]
        for tsid in (2, 4, 5, 7):
            assert sorted(
                serialize(w) for w in indexed.get_fillers_by_tsid(tsid)
            ) == sorted(serialize(w) for w in scanned.get_fillers_by_tsid(tsid))

    def test_cache_invalidated_on_new_version(self, credit_structure):
        store = FragmentStore(credit_structure, use_cache=True)
        limit = Element("creditLimit")
        limit.add_text("1")
        store.append(Filler(4, 4, XSDateTime(2003, 1, 1), limit))
        assert len(store.versions_of(4)) == 1
        limit2 = Element("creditLimit")
        limit2.add_text("2")
        store.append(Filler(4, 4, XSDateTime(2003, 2, 1), limit2))
        assert len(store.versions_of(4)) == 2

    def test_as_document(self, credit_store):
        document = credit_store.as_document()
        assert document.document_element.tag == "fragments"
        assert len(document.document_element.children) == credit_store.filler_count

    def test_stats(self, credit_store):
        assert credit_store.wire_size > 0
        assert credit_store.latest_time() is not None
        assert len(credit_store) == credit_store.filler_count

    def test_clear(self, credit_store):
        credit_store.clear()
        assert credit_store.filler_count == 0
        assert credit_store.versions_of(0) == []

    def test_complete_store_has_no_dangling_holes(self, credit_store):
        assert credit_store.is_complete()
        assert credit_store.dangling_holes() == []

    def test_dangling_holes_detected(self, credit_structure, credit_fillers):
        store = FragmentStore(credit_structure)
        # Drop every status filler: the transactions' status holes dangle.
        store.extend(f for f in credit_fillers if f.content.tag != "status")
        assert not store.is_complete()
        dangling = store.dangling_holes()
        assert dangling  # at least the three status holes
        assert all(tsid == 7 for _hole, tsid in dangling)

    def test_dangling_holes_heal_on_arrival(self, credit_structure, credit_fillers):
        store = FragmentStore(credit_structure)
        statuses = [f for f in credit_fillers if f.content.tag == "status"]
        store.extend(f for f in credit_fillers if f.content.tag != "status")
        missing_before = len(store.dangling_holes())
        store.extend(statuses)
        assert store.is_complete()
        assert missing_before > 0


class TestReconstruction:
    def test_round_trip_equals_view(self, credit_structure, credit_view, credit_store):
        rebuilt = temporalize(credit_store)
        assert serialize(rebuilt) == serialize(credit_view)

    def test_schema_driven_matches_generic(self, credit_structure, credit_store):
        generic = temporalize(credit_store)
        driven = schema_driven_temporalize(credit_store, credit_structure)
        assert serialize(driven) == serialize(generic)

    def test_generated_query_mentions_structure(self, credit_structure):
        text = generate_reconstruction_query(credit_structure)
        assert "temporalizeCreditAccounts" in text
        assert "get_fillers_list" in text
        assert "creditLimit" in text and "transaction" in text

    def test_missing_fillers_leave_gap(self, credit_structure, credit_fillers):
        store = FragmentStore(credit_structure)
        # Drop all status fillers: reconstruction simply lacks them.
        store.extend(f for f in credit_fillers if f.content.tag != "status")
        rebuilt = temporalize(store)
        assert "status" not in serialize(rebuilt)
        assert "transaction" in serialize(rebuilt)
