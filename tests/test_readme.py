"""The README's Python snippets must run as written."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestReadme:
    def test_has_python_examples(self):
        assert len(python_blocks()) >= 2

    def test_snippets_execute(self):
        namespace: dict = {}
        for block in python_blocks():
            exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
        # The quickstart block leaves a result behind; sanity-check it.
        assert "result" in namespace
        assert [n.string_value() for n in namespace["result"]] == ["Ada"]

    def test_mentioned_files_exist(self):
        text = README.read_text()
        root = README.parent
        for match in re.findall(r"`((?:examples|docs)/[\w./-]+)`", text):
            assert (root / match).exists(), match
        for match in re.findall(r"python (examples/[\w.]+\.py)", text):
            assert (root / match).exists(), match
