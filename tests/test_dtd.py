"""Tests for the minimal DTD reader (repro.dom.dtd)."""

import pytest

from repro.dom.dtd import DTDError, parse_dtd

CREDIT_DTD = """
<!DOCTYPE creditSystem [
<!ELEMENT creditAccounts (account*)>
<!ELEMENT account (customer, creditLimit*, transaction*)>
<!ATTLIST account id ID #REQUIRED>
<!ATTLIST account vtFrom CDATA #REQUIRED>
<!ATTLIST account vtTo CDATA #REQUIRED>
<!ELEMENT customer (#CDATA)>
<!ELEMENT creditLimit (#PCDATA)>
<!ATTLIST creditLimit vtFrom CDATA #REQUIRED>
<!ATTLIST creditLimit vtTo CDATA #REQUIRED>
<!ELEMENT transaction (vendor, status*, amount)>
<!ATTLIST transaction vtFrom CDATA #REQUIRED>
<!ATTLIST transaction vtTo CDATA #REQUIRED>
<!ELEMENT vendor (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ATTLIST status vtFrom CDATA #REQUIRED>
<!ATTLIST status vtTo CDATA #REQUIRED>
<!ELEMENT amount (#PCDATA)> ]>
"""

TAG_STRUCTURE_DTD = """
<!DOCTYPE tagStructure [
<!ELEMENT tag (tag*)>
<!ATTLIST tag type (snapshot | temporal | event) #REQUIRED>
<!ATTLIST tag id CDATA #REQUIRED>
<!ATTLIST tag name CDATA #REQUIRED> ]>
"""


class TestCreditDTD:
    def test_root_falls_back_to_first_declared(self):
        # The paper's DOCTYPE names "creditSystem" but never declares it.
        dtd = parse_dtd(CREDIT_DTD)
        assert dtd.root == "creditAccounts"

    def test_element_children_with_cardinality(self):
        dtd = parse_dtd(CREDIT_DTD)
        account = dtd.elements["account"]
        assert account.children == [
            ("customer", ""),
            ("creditLimit", "*"),
            ("transaction", "*"),
        ]

    def test_child_names(self):
        dtd = parse_dtd(CREDIT_DTD)
        assert dtd.child_names("transaction") == ["vendor", "status", "amount"]
        assert dtd.child_names("customer") == []

    def test_text_only(self):
        dtd = parse_dtd(CREDIT_DTD)
        assert dtd.elements["amount"].is_text_only
        assert dtd.elements["customer"].is_text_only
        assert not dtd.elements["account"].is_text_only

    def test_attlists(self):
        dtd = parse_dtd(CREDIT_DTD)
        account_attrs = {attr.name: attr for attr in dtd.attrs_of("account")}
        assert set(account_attrs) == {"id", "vtFrom", "vtTo"}
        assert account_attrs["id"].type == "ID"
        assert account_attrs["id"].default == "#REQUIRED"
        assert dtd.attrs_of("vendor") == []


class TestTagStructureDTD:
    def test_recursive_content_model(self):
        dtd = parse_dtd(TAG_STRUCTURE_DTD)
        assert dtd.root == "tag"
        assert dtd.child_names("tag") == ["tag"]

    def test_enumerated_attribute(self):
        dtd = parse_dtd(TAG_STRUCTURE_DTD)
        type_attr = next(a for a in dtd.attrs_of("tag") if a.name == "type")
        assert "snapshot" in type_attr.type


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!DOCTYPE x [ ]>")

    def test_bare_declarations_accepted(self):
        dtd = parse_dtd("<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>")
        assert dtd.root == "a"
