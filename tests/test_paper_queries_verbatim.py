"""The paper's §2/§3.1 queries, as printed, must parse and translate."""

import pytest

from repro import TagStructure
from repro.core import Strategy, Translator
from repro.xquery import parse_xcql

# Queries exactly as printed in the paper (§2 examples 1-3, §3.1 queries 1-2,
# §6 version-projection example), modulo whitespace.
PAPER_QUERIES = {
    "syn_ack": """
        for $s in stream("gsyn")//packet
        where not (some $a in stream("ack")//packet
                   ?[vtFrom($s)+PT1M,now]
                   satisfies $s/id = $a/id
                     and $s/srcIP = $a/destIP
                     and $s/srcPort = $a/destPort)
        return <warning> { $s/id } </warning>
    """,
    "radar": """
        for $r in stream("radar1")//event,
            $s in stream("radar2")//event
                 ?[vtFrom($r)-PT1S,vtTo($r)+PT1S]
        where $r/frequency = $s/frequency
        return
          <position>
            { triangulate($r/angle,$s/angle) }
          </position>
    """,
    "ambulance": """
        for $v in stream("vehicle")//event
            $r in stream("road_sensor")
                  //event?[vtFrom($v),vtTo($v)]
            $t in stream("traffic_light")
                  //event?[vtFrom($v),vtTo($v)]
        where distance($v/location,$r/location)<0.1
          and distance($v/location,$t/location)<10
          and $v/type = "ambulance"
        return
          <set_traffic_light ID="{$t/id}">
            <status>green</status>,
            <time> {vtFrom($t)
                    +(distance($v/location,$t/location)
                      div $r/speed)}
            </time>
          </set_traffic_light>
    """,
    "credit_q1": """
        for $a in stream("credit")//account
        where sum($a/transaction?[2003-11-01,2003-12-01]
                  [status = "charged"]/amount) >=
              $a/creditLimit?[now]
        return
          <account>
            { attribute id {$a/@id},
              $a/customer,
              $a/creditLimit }
          </account>
    """,
    "credit_q2": """
        for $a in stream("credit")//account
        where sum($a/transaction?[now-PT1H,now]
                  [status = "charged"]/amount) >=
              max($a/creditLimit?[now] * 0.9, 5000)
        return
          <alert>
            <account id={$a/@id}>
              {$a/customer}
            </account>
          </alert>
    """,
    "version_window": """
        stream("credit")
        //transaction[vendor="ABC Inc"]#[1,10]
    """,
}


def event_structure(root: str, fields: list[str]) -> TagStructure:
    return TagStructure.build(
        {
            "name": root,
            "type": "snapshot",
            "children": [
                {
                    "name": "event",
                    "type": "event",
                    "children": [{"name": f, "type": "snapshot"} for f in fields],
                }
            ],
        }
    )


def packet_structure(root: str) -> TagStructure:
    return TagStructure.build(
        {
            "name": root,
            "type": "snapshot",
            "children": [
                {
                    "name": "packet",
                    "type": "event",
                    "children": [
                        {"name": f, "type": "snapshot"}
                        for f in ("id", "srcIP", "destIP", "srcPort", "destPort")
                    ],
                }
            ],
        }
    )


STRUCTURES = {
    "gsyn": packet_structure("syns"),
    "ack": packet_structure("acks"),
    "radar1": event_structure("events", ["frequency", "angle"]),
    "radar2": event_structure("events", ["frequency", "angle"]),
    "vehicle": event_structure("events", ["id", "type", "location"]),
    "road_sensor": event_structure("events", ["id", "speed", "location"]),
    "traffic_light": event_structure("events", ["id", "status", "location"]),
}


@pytest.fixture(scope="module")
def all_structures(credit_structure=None):
    from tests.conftest import CREDIT_TAG_STRUCTURE_XML

    structures = dict(STRUCTURES)
    structures["credit"] = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    return structures


class TestVerbatimQueries:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_parses(self, name):
        module = parse_xcql(PAPER_QUERIES[name])
        assert module.body is not None

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_translates(self, all_structures, name, strategy):
        module = parse_xcql(PAPER_QUERIES[name])
        translator = Translator(all_structures, strategy)
        translated = translator.translate_module(module)
        assert translated.body is not None
