"""Tests for the get_fillers hoisting rewrite (paper §8 extension)."""

import pytest

from repro import Strategy
from repro.core.optimizer import count_calls
from repro.core.pipeline import hoist_common_fillers
from repro.dom import serialize
from repro.xquery import parse_xcql, to_source

from tests.conftest import NOW_2003_12_15

QUERY_1 = """
for $a in stream("credit")//account
where sum($a/transaction?[2003-11-01,2003-12-01][status = "charged"]/amount) >=
      $a/creditLimit?[now]
return
  <account>
    { attribute id {$a/@id}, $a/customer, $a/creditLimit }
  </account>
"""


class TestHoisting:
    def test_query1_folds_to_one_call(self, credit_engine):
        plain = credit_engine.compile(QUERY_1, Strategy.QAC)
        optimized = credit_engine.compile(QUERY_1, Strategy.QAC, optimize=True)
        # Unoptimized: one call per hole crossing of $a (three of them).
        assert count_calls(plain.translated.body, "get_fillers") >= 4
        assert optimized.hoisted_calls == 1
        assert (
            count_calls(optimized.translated.body, "get_fillers")
            < count_calls(plain.translated.body, "get_fillers")
        )
        assert "$a__fillers" in optimized.translated_source

    def test_optimized_results_identical(self, credit_engine):
        plain = credit_engine.execute(
            credit_engine.compile(QUERY_1, Strategy.QAC), now=NOW_2003_12_15
        )
        optimized = credit_engine.execute(
            credit_engine.compile(QUERY_1, Strategy.QAC, optimize=True),
            now=NOW_2003_12_15,
        )
        assert [serialize(e) for e in optimized] == [serialize(e) for e in plain]

    def test_let_placed_after_binding(self, credit_engine):
        optimized = credit_engine.compile(QUERY_1, Strategy.QAC, optimize=True)
        text = optimized.translated_source
        assert text.index("for $a in") < text.index("let $a__fillers :=")
        assert text.index("let $a__fillers :=") < text.index("where")

    def test_single_use_not_hoisted(self, credit_engine):
        compiled = credit_engine.compile(
            'for $a in stream("credit")//account return $a/creditLimit',
            Strategy.QAC,
            optimize=True,
        )
        assert compiled.hoisted_calls == 0

    def test_idempotent(self):
        module = parse_xcql(
            'for $a in x return (get_fillers("s", $a/hole/@id)/b,'
            ' get_fillers("s", $a/hole/@id)/c)'
        )
        once, n1 = hoist_common_fillers(module)
        twice, n2 = hoist_common_fillers(once)
        assert n1 == 1 and n2 == 0
        assert to_source(twice) == to_source(once)

    def test_does_not_capture_unrelated_variables(self):
        module = parse_xcql(
            'for $a in x, $b in y return (get_fillers("s", $a/hole/@id)/p,'
            ' get_fillers("s", $b/hole/@id)/q,'
            ' get_fillers("s", $a/hole/@id)/r,'
            ' get_fillers("s", $b/hole/@id)/t)'
        )
        optimized, count = hoist_common_fillers(module)
        assert count == 2
        text = to_source(optimized)
        assert "let $a__fillers" in text and "let $b__fillers" in text

    def test_nested_flwor_handled(self):
        module = parse_xcql(
            "for $a in x return "
            'for $b in get_fillers("s", $a/hole/@id)/k '
            'return (get_fillers("s", $b/hole/@id)/m, get_fillers("s", $b/hole/@id)/n)'
        )
        optimized, count = hoist_common_fillers(module)
        assert count == 1
        assert "let $b__fillers" in to_source(optimized)

    def test_count_calls_helper(self):
        module = parse_xcql("f(1) + f(2) + g(f(3))")
        assert count_calls(module.body, "f") == 3
        assert count_calls(module.body, "g") == 1


class TestOptimizedBench:
    def test_optimized_is_not_slower(self, credit_engine):
        import time

        plain = credit_engine.compile(QUERY_1, Strategy.QAC)
        optimized = credit_engine.compile(QUERY_1, Strategy.QAC, optimize=True)

        def timed(compiled) -> float:
            best = float("inf")
            for _ in range(5):
                started = time.perf_counter()
                credit_engine.execute(compiled, now=NOW_2003_12_15)
                best = min(best, time.perf_counter() - started)
            return best

        # On the small fixture the win is modest; require no regression
        # with a generous tolerance.
        assert timed(optimized) <= timed(plain) * 1.5
