"""The unified plan-pass pipeline (PR 5).

Four layers of guarantees:

- **Golden traces**: representative queries (plain, hoisted, merge-join,
  delta-safe, shared+routing, interpreted) produce the expected per-pass
  trace, with the legacy reason strings preserved verbatim.
- **Differential**: pipeline-compiled plans are byte-identical to the
  pre-refactor compile sequence (parse → translate → hoist → lower →
  compile_module) for the whole verbatim paper-query corpus, on both
  backends, in translated source and in execution results.
- **Cache keying**: the pipeline fingerprint and the tag-structure epoch
  both participate in the plan-cache key — editing the pass list or
  re-registering a stream can never serve a stale plan.
- **Tooling**: ``lint_sources`` rejects pipeline-bypassing optimizer
  imports, and ``repro-xcql explain --passes`` emits the trace.
"""

from __future__ import annotations

import json

import pytest

from repro import TagStructure
from repro.core import Strategy, Translator, XCQLEngine
from repro.core.lint import lint_sources
from repro.core.pipeline import PassManager, PassOptions, default_passes
from repro.dom.parser import parse_document
from repro.dom.serializer import serialize
from repro.fragments.model import Filler
from repro.temporal.chrono import XSDateTime
from repro.xquery.parser import parse

# The tests replicate the pre-refactor compile sequence as the
# differential reference; production code must import these through
# repro.core.pipeline (enforced by lint_sources over src/).
from repro.core.pipeline import hoist_common_fillers, lower_interval_joins

from tests.conftest import NOW_2003_12_15
from tests.test_paper_queries_verbatim import PAPER_QUERIES, STRUCTURES

PASS_NAMES = [
    "translate",
    "hoist-fillers",
    "lower-merge-joins",
    "delta-safety",
    "shared-split",
    "routing-predicate",
    "compile-stream-automaton",
]

EVENT_STRUCTURE_XML = """
<stream:structure>
  <tag type="snapshot" id="1" name="log">
    <tag type="event" id="2" name="txn">
      <tag type="snapshot" id="4" name="amount"/>
    </tag>
  </tag>
</stream:structure>
"""

EVENT_QUERY = (
    'for $t in stream("s")//txn where $t/amount > 50 '
    "return <hit>{$t/amount/text()}</hit>"
)

JOIN_QUERY = (
    'for $x in stream("s")//txn?[2003-01-01, 2003-12-31] '
    'for $y in stream("s")//txn?[2003-01-01, 2003-12-31] '
    "where $x overlaps $y return 1"
)


def event_engine(**kwargs) -> XCQLEngine:
    engine = XCQLEngine(default_now=XSDateTime(2004, 1, 1), **kwargs)
    engine.register_stream("s", TagStructure.from_xml(EVENT_STRUCTURE_XML))
    return engine


def trace_by_name(compiled) -> dict:
    return {entry.name: entry for entry in compiled.info.trace}


def normalized(result) -> list[str]:
    return [
        serialize(item) if hasattr(item, "string_value") else str(item)
        for item in result
    ]


class TestGoldenTraces:
    def test_every_compile_records_all_passes_in_order(self):
        compiled = event_engine().compile('count(stream("s")//txn)')
        assert [entry.name for entry in compiled.info.trace] == PASS_NAMES

    def test_plain_query(self):
        compiled = event_engine().compile('count(stream("s")//txn)')
        trace = trace_by_name(compiled)
        assert trace["translate"].fired
        assert not trace["hoist-fillers"].fired
        assert trace["hoist-fillers"].detail == "optimize=False"
        assert not trace["lower-merge-joins"].fired
        assert not trace["delta-safety"].fired
        assert trace["delta-safety"].detail == "body is not a simple FLWOR"
        assert not trace["shared-split"].fired
        assert not trace["routing-predicate"].fired

    def test_hoisted_query(self, credit_engine):
        source = PAPER_QUERIES["credit_q1"]
        compiled = credit_engine.compile(source, Strategy.QAC, optimize=True)
        trace = trace_by_name(compiled)
        assert trace["hoist-fillers"].fired
        assert trace["hoist-fillers"].rewrites == compiled.hoisted_calls > 0

    def test_merge_join_query(self):
        compiled = event_engine().compile(JOIN_QUERY)
        trace = trace_by_name(compiled)
        assert trace["lower-merge-joins"].fired
        assert trace["lower-merge-joins"].rewrites == compiled.merge_joins == 1

    def test_delta_safe_shared_routed_query(self):
        compiled = event_engine().compile(EVENT_QUERY, Strategy.QAC_PLUS)
        trace = trace_by_name(compiled)
        assert trace["delta-safety"].fired
        assert compiled.info.delta is not None and compiled.info.delta.safe
        assert trace["shared-split"].fired
        assert compiled.info.shared is not None and compiled.info.shared.safe
        assert trace["routing-predicate"].fired
        assert compiled.info.routing is not None
        assert trace["routing-predicate"].detail == compiled.info.routing.describe()
        assert trace["compile-stream-automaton"].fired
        assert compiled.info.automaton is not None
        assert trace["compile-stream-automaton"].detail == compiled.info.automaton.describe()

    def test_non_shared_plan_records_automaton_fallback_reason(self):
        compiled = event_engine().compile('count(stream("s")//txn)')
        trace = trace_by_name(compiled)
        assert not trace["compile-stream-automaton"].fired
        assert compiled.info.automaton is None
        assert compiled.info.automaton_reason == compiled.info.shared_reason

    def test_interpreted_backend_keeps_legacy_reason(self):
        engine = event_engine()
        compiled = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS, backend="interpreted")
        trace = trace_by_name(compiled)
        assert not trace["delta-safety"].fired
        assert trace["delta-safety"].detail == "interpreted backend stays full-scan"
        assert not trace["lower-merge-joins"].fired
        assert engine.prepare_delta(compiled) is None
        assert compiled.delta_reason == "interpreted backend stays full-scan"

    def test_annotations_drive_prepare_without_reanalysis(self):
        engine = event_engine()
        compiled = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS)
        delta = engine.prepare_delta(compiled)
        shared = engine.prepare_shared(compiled)
        assert delta is not None and delta.stream == "s"
        assert shared is not None
        assert shared.group_key == compiled.info.shared.group_key
        assert shared.routing is compiled.info.shared.routing


class TestExplainTrace:
    def test_explain_reports_passes_and_fingerprint(self):
        engine = event_engine()
        plan = engine.explain(EVENT_QUERY, Strategy.QAC_PLUS)
        assert [entry["name"] for entry in plan["passes"]] == PASS_NAMES
        assert all(
            set(entry) == {"name", "fired", "rewrites", "detail"}
            for entry in plan["passes"]
        )
        fingerprint = plan["fingerprint"]
        assert fingerprint == engine.pipeline.fingerprint()
        assert len(fingerprint) == 12 and int(fingerprint, 16) >= 0
        # The pre-pipeline summary keys survive unchanged.
        for key in (
            "strategy", "translated", "depends_on", "time_sensitive",
            "hoisted_calls", "delta_safe", "delta_reason", "shared_safe",
            "shared_reason", "shared_group", "routing_predicate",
        ):
            assert key in plan


def legacy_translated(structures, source, strategy, optimize, backend, merge_joins):
    """The pre-refactor engine.compile rewrite sequence, verbatim."""
    module = parse(source, xcql=True)
    translated = Translator(structures, strategy).translate_module(module)
    if optimize:
        translated, _ = hoist_common_fillers(translated)
    if merge_joins and backend == "compiled":
        translated, _ = lower_interval_joins(translated)
    return translated


class TestDifferentialAgainstPreRefactor:
    @pytest.fixture(scope="class")
    def all_structures(self):
        from tests.conftest import CREDIT_TAG_STRUCTURE_XML

        structures = dict(STRUCTURES)
        structures["credit"] = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
        return structures

    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_translated_source_is_byte_identical(
        self, all_structures, name, strategy, backend
    ):
        engine = XCQLEngine(default_now=NOW_2003_12_15)
        for stream, structure in all_structures.items():
            engine.register_stream(stream, structure)
        for optimize in (False, True):
            compiled = engine.compile(
                PAPER_QUERIES[name], strategy, optimize=optimize, backend=backend
            )
            reference = legacy_translated(
                all_structures, PAPER_QUERIES[name], strategy, optimize,
                backend, engine.merge_joins,
            )
            from repro.xquery.xast import to_source

            assert compiled.translated_source == to_source(reference)

    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("name", ["credit_q1", "credit_q2", "version_window"])
    def test_execution_is_byte_identical(
        self, credit_engine, name, strategy, backend
    ):
        from repro.xquery.compiler import compile_module
        from repro.xquery.evaluator import Evaluator

        source = PAPER_QUERIES[name]
        compiled = credit_engine.compile(source, strategy, backend=backend)
        pipeline_result = normalized(credit_engine.execute(compiled))
        reference = legacy_translated(
            credit_engine.tag_structures, source, strategy, False,
            backend, credit_engine.merge_joins,
        )
        context = credit_engine.build_context()
        if backend == "compiled":
            reference_result = compile_module(reference)(context)
        else:
            reference_result = Evaluator(context).evaluate_module(reference)
        assert pipeline_result == normalized(reference_result)


class TestCacheKeying:
    def test_fingerprint_is_stable_and_spec_sensitive(self):
        manager = PassManager()
        assert manager.fingerprint() == PassManager().fingerprint()
        trimmed = PassManager(default_passes()[:-1])
        assert trimmed.fingerprint() != manager.fingerprint()

    def test_mutating_the_pipeline_invalidates_cached_plans(self):
        engine = event_engine()
        first = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS)
        assert engine.compile(EVENT_QUERY, Strategy.QAC_PLUS) is first
        engine.pipeline.passes.pop()  # drop compile-stream-automaton
        recompiled = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS)
        assert recompiled is not first
        assert recompiled.info.fingerprint != first.info.fingerprint
        assert first.info.automaton is not None
        assert recompiled.info.automaton is None
        assert len(recompiled.info.trace) == len(PASS_NAMES) - 1

    def test_version_bump_invalidates_cached_plans(self):
        engine = event_engine()
        first = engine.compile(EVENT_QUERY, Strategy.QAC_PLUS)
        engine.pipeline.passes[-1].version = 2
        assert engine.compile(EVENT_QUERY, Strategy.QAC_PLUS) is not first

    def test_register_stream_refreshes_stale_translations(self):
        engine = XCQLEngine()
        narrow = TagStructure.from_xml(EVENT_STRUCTURE_XML)
        engine.register_stream("s", narrow)
        before = engine.compile('stream("s")//txn', Strategy.QAC_PLUS)
        hits_before = engine.plan_cache_info()["hits"]
        # Same stream name, different schema: txn moves to tsid 7.
        engine.register_stream(
            "s",
            TagStructure.from_xml(
                EVENT_STRUCTURE_XML.replace('id="2"', 'id="7"')
            ),
        )
        after = engine.compile('stream("s")//txn', Strategy.QAC_PLUS)
        assert after is not before
        assert after.translated_source != before.translated_source
        assert "7" in after.translated_source
        # The epoch bump must not reset the cache counters.
        assert engine.plan_cache_info()["hits"] == hits_before

    def test_view_plans_are_epoch_keyed_too(self, credit_engine):
        source = 'count(stream("credit")//account)'
        credit_engine.execute_on_view(source)
        size = credit_engine.plan_cache_info()["size"]
        credit_engine.register_stream(
            "credit", credit_engine.tag_structures["credit"],
            credit_engine.stores["credit"],
        )
        assert credit_engine.plan_cache_info()["size"] == 0
        credit_engine.execute_on_view(source)
        assert credit_engine.plan_cache_info()["size"] <= size


class TestSourceLint:
    def test_src_tree_is_clean(self):
        assert lint_sources(["src"]) == []

    def test_bypass_import_is_flagged(self, tmp_path):
        offender = tmp_path / "sneaky.py"
        offender.write_text(
            "from repro.core.optimizer import analyze_delta\n"
        )
        findings = lint_sources([str(offender)])
        assert len(findings) == 1
        assert findings[0].code == "pipeline-bypass"
        assert "analyze_delta" in findings[0].message

    def test_pipeline_module_is_exempt(self, tmp_path):
        exempt = tmp_path / "core"
        exempt.mkdir()
        module = exempt / "pipeline.py"
        module.write_text("from repro.core.optimizer import analyze_shared\n")
        assert lint_sources([str(module)]) == []

    def test_benign_imports_pass(self, tmp_path):
        benign = tmp_path / "ok.py"
        benign.write_text(
            "from repro.core.optimizer import RoutingPredicate\n"
            "from repro.core.pipeline import hoist_common_fillers\n"
        )
        assert lint_sources([str(benign)]) == []

    def test_unparseable_file_reports_not_raises(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        findings = lint_sources([str(broken)])
        assert [f.code for f in findings] == ["syntax-error"]

    def test_automata_module_may_not_import_dom(self, tmp_path):
        package = tmp_path / "xquery"
        package.mkdir()
        offender = package / "automata.py"
        offender.write_text(
            "import repro.dom.nodes\n"
            "from repro.dom.nodes import Element\n"
            "from repro.xquery import xast\n"
        )
        findings = lint_sources([str(offender)])
        assert [f.code for f in findings] == ["automata-dom-import"] * 2
        assert "DOM-free" in findings[0].message

    def test_dom_imports_fine_outside_automata(self, tmp_path):
        benign = tmp_path / "host.py"
        benign.write_text("from repro.dom.nodes import Element\n")
        assert lint_sources([str(benign)]) == []


class TestCLI:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        from repro.fragments.persist import save_store
        from repro.fragments.store import FragmentStore

        store = FragmentStore(TagStructure.from_xml(EVENT_STRUCTURE_XML))
        store.extend([
            Filler(
                0, 1, XSDateTime(2003, 1, 1),
                parse_document('<log><hole id="1" tsid="2"/></log>').document_element,
            ),
            Filler(
                1, 2, XSDateTime(2003, 1, 2),
                parse_document("<txn><amount>80</amount></txn>").document_element,
            ),
        ])
        path = tmp_path / "store.xml"
        save_store(store, str(path))
        return str(path)

    def test_explain_with_passes(self, snapshot, capsys):
        from repro.cli import xcql_main

        code = xcql_main([
            "explain", "--store", snapshot, "--stream", "s",
            "--query", EVENT_QUERY, "--strategy", Strategy.QAC_PLUS.value,
            "--passes",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in report["passes"]] == PASS_NAMES
        assert report["delta_safe"] is True
        assert len(report["fingerprint"]) == 12

    def test_explain_without_passes_omits_trace(self, snapshot, capsys):
        from repro.cli import xcql_main

        code = xcql_main([
            "explain", "--store", snapshot, "--stream", "s",
            "--query", EVENT_QUERY,
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert "passes" not in report and "fingerprint" not in report
        assert report["translated"]

    def test_run_is_the_default_command(self, snapshot, capsys):
        from repro.cli import xcql_main

        code = xcql_main([
            "--store", snapshot, "--stream", "s", "--query", EVENT_QUERY,
            "--now", "2003-06-01T00:00:00",
        ])
        assert code == 0
        assert "<hit>" in capsys.readouterr().out

    def test_passes_requires_explain(self, snapshot):
        from repro.cli import xcql_main

        with pytest.raises(SystemExit):
            xcql_main([
                "run", "--store", snapshot, "--stream", "s",
                "--query", EVENT_QUERY, "--passes",
            ])

    def test_lint_main_clean_and_dirty(self, tmp_path, capsys):
        from repro.cli import lint_main

        assert lint_main(["src"]) == 0
        assert "clean" in capsys.readouterr().out
        offender = tmp_path / "bad.py"
        offender.write_text("from repro.core.optimizer import analyze_shared\n")
        assert lint_main([str(offender)]) == 1
        assert "pipeline-bypass" in capsys.readouterr().out
