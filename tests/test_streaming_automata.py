"""Differential tests for the streaming event-automaton hot path (PR 6).

The standing-query fast path (``XCQLEngine.feed_raw`` + the scheduler's
automaton-served tuple source) must be *observationally identical* to the
paths it bypasses: the DOM delta driver and the interpreted full
evaluation.  These tests replay the paper's credit corpus and randomized
churn through all three and require byte-identical answers per tick,
plus exact error parity between ``feed_raw``'s envelope scan and
``parse_filler``.
"""

from __future__ import annotations

import random

import pytest

from repro import Fragmenter, Strategy, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.dom.serializer import serialize
from repro.fragments.model import Filler, LazyFiller, parse_filler
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import QueryScheduler
from repro.temporal import XSDateTime

from tests.conftest import CREDIT_VIEW_XML, NOW_2003_12_15

# Standing queries over the paper's credit stream: an event target, a
# temporal target returning the bound node itself (so the automaton's
# vtFrom/vtTo annotations must match the store's byte for byte), and a
# predicate that never matches.
CREDIT_QUERIES = [
    'for $t in stream("credit")//transaction '
    "where $t/amount > 50 return <hit>{$t/vendor/text()}</hit>",
    'for $c in stream("credit")//creditLimit where $c > 900 return $c',
    'for $t in stream("credit")//transaction '
    "where $t/amount > 99999 return <never>{$t/@id}</never>",
]


def _arm(structure, sources, *, automata, now):
    engine = XCQLEngine(default_now=now)
    engine.register_stream("credit", structure)
    scheduler = QueryScheduler(engine, stream_automata=automata)
    queries = []
    for source in sources:
        query = ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS)
        scheduler.add(query)
        queries.append(query)
    return engine, scheduler, queries


def _snapshots(queries):
    return [sorted(serialize(item) for item in q.last_result) for q in queries]


class TestCreditCorpusDifferential:
    """Raw/automaton vs DOM/delta vs interpreted over the §3.1 corpus."""

    def test_byte_identity_per_tick(self, credit_structure, credit_fillers):
        raw_engine, raw_sched, raw_queries = _arm(
            credit_structure, CREDIT_QUERIES, automata=True, now=NOW_2003_12_15
        )
        dom_engine, dom_sched, dom_queries = _arm(
            credit_structure, CREDIT_QUERIES, automata=False, now=NOW_2003_12_15
        )
        raw_sched.poll(NOW_2003_12_15)
        dom_sched.poll(NOW_2003_12_15)
        batch = 3
        for start in range(0, len(credit_fillers), batch):
            window = credit_fillers[start:start + batch]
            raw_engine.feed_raw("credit", [f.to_xml() for f in window])
            dom_engine.feed(
                "credit",
                [Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                 for f in window],
            )
            raw_sched.poll(NOW_2003_12_15)
            dom_sched.poll(NOW_2003_12_15)
            assert _snapshots(raw_queries) == _snapshots(dom_queries)
        # ...and against the interpreted one-shot evaluation at the end.
        for query, source in zip(raw_queries, CREDIT_QUERIES):
            compiled = dom_engine.compile(
                source, Strategy.QAC_PLUS, backend="interpreted"
            )
            interpreted = dom_engine.execute(compiled, now=NOW_2003_12_15)
            assert sorted(serialize(i) for i in query.last_result) == sorted(
                serialize(i) for i in interpreted
            ), source
        assert raw_sched.stats()["automata"]["runs"] > 0

    def test_hot_path_never_materializes(self, credit_structure, credit_fillers):
        engine, scheduler, _ = _arm(
            credit_structure, CREDIT_QUERIES, automata=True, now=NOW_2003_12_15
        )
        scheduler.poll(NOW_2003_12_15)
        engine.feed_raw("credit", [f.to_xml() for f in credit_fillers])
        scheduler.poll(NOW_2003_12_15)
        fillers = engine.stores["credit"].fillers_since(0)
        assert fillers and all(isinstance(f, LazyFiller) for f in fillers)
        assert not any(f.materialized for f in fillers)
        # A cold full evaluation still works: content parses on demand.
        result = engine.execute(
            'count(stream("credit")//transaction)', now=NOW_2003_12_15
        )
        assert result == [3]
        assert any(f.materialized for f in fillers if f.tsid == 5)

    def test_mixed_feed_declines_to_fallback(self, credit_structure,
                                             credit_fillers):
        """A DOM-fed filler inside the window forces the delta fallback —
        and the answer still matches the control arm byte for byte."""
        raw_engine, raw_sched, raw_queries = _arm(
            credit_structure, CREDIT_QUERIES, automata=True, now=NOW_2003_12_15
        )
        dom_engine, dom_sched, dom_queries = _arm(
            credit_structure, CREDIT_QUERIES, automata=False, now=NOW_2003_12_15
        )
        raw_sched.poll(NOW_2003_12_15)
        dom_sched.poll(NOW_2003_12_15)
        half = len(credit_fillers) // 2
        raw_engine.feed_raw("credit", [f.to_xml() for f in credit_fillers[:half]])
        # The second half arrives pre-parsed: no automaton capture exists.
        raw_engine.feed(
            "credit",
            [Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
             for f in credit_fillers[half:]],
        )
        dom_engine.feed(
            "credit",
            [Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
             for f in credit_fillers],
        )
        raw_sched.poll(NOW_2003_12_15)
        dom_sched.poll(NOW_2003_12_15)
        assert _snapshots(raw_queries) == _snapshots(dom_queries)
        assert raw_sched.stats()["automata"]["fallbacks"] > 0

    def test_remove_unregisters_automaton(self, credit_structure):
        engine, scheduler, queries = _arm(
            credit_structure, CREDIT_QUERIES[:1], automata=True,
            now=NOW_2003_12_15,
        )
        assert engine.automaton_host.stats()["registered"] == 1
        scheduler.remove(queries[0])
        assert engine.automaton_host.stats()["registered"] == 0


# ---------------------------------------------------------------------------
# Randomized churn: supersedes, out-of-order valid times, repeated ids
# ---------------------------------------------------------------------------

_CHURN_STRUCTURE = TagStructure.from_xml(
    """
    <stream:structure>
      <tag type="snapshot" id="1" name="ledger">
        <tag type="event" id="2" name="txn">
          <tag type="snapshot" id="3" name="amount"/>
        </tag>
        <tag type="temporal" id="4" name="limit"/>
        <tag type="snapshot" id="5" name="note"/>
      </tag>
    </stream:structure>
    """
)

CHURN_QUERIES = [
    'for $t in stream("ledger")//txn where $t/amount > 40 '
    "return <hit>{$t/amount/text()}</hit>",
    'for $l in stream("ledger")//limit where $l > 10 return $l',
    'for $n in stream("ledger")//note return $n',
]


def _churn_envelope(rng, tick, serial):
    """One random raw envelope: event txn, temporal limit, or snapshot note.

    Repeated filler ids (limit/note supersedes) and shuffled hours
    (out-of-order valid times) are generated on purpose.
    """
    hour = rng.randrange(0, 24)
    stamp = f"2003-06-{(tick % 27) + 1:02d}T{hour:02d}:00:00"
    kind = rng.randrange(3)
    if kind == 0:
        amount = rng.randrange(0, 100)
        return (
            f'<filler id="{1000 + serial}" tsid="2" validTime="{stamp}">'
            f'<txn seq="{serial}"><amount>{amount}</amount></txn></filler>'
        )
    if kind == 1:
        return (
            f'<filler id="{rng.randrange(1, 4)}" tsid="4" validTime="{stamp}">'
            f"<limit>{rng.randrange(0, 50)}</limit></filler>"
        )
    return (
        f'<filler id="{rng.randrange(10, 13)}" tsid="5" validTime="{stamp}">'
        f'<note k="{rng.randrange(5)}">n{serial}</note></filler>'
    )


class TestRandomizedChurn:
    @pytest.mark.parametrize("seed", [7, 23, 101])
    def test_three_way_byte_identity(self, seed):
        rng = random.Random(seed)
        now = XSDateTime.parse("2003-12-31T00:00:00")
        raw_engine, raw_sched, raw_queries = _arm(
            _CHURN_STRUCTURE, [], automata=True, now=now
        )
        dom_engine, dom_sched, dom_queries = _arm(
            _CHURN_STRUCTURE, [], automata=False, now=now
        )
        # _arm registered the stream as "credit"; churn uses "ledger".
        raw_engine.register_stream("ledger", _CHURN_STRUCTURE)
        dom_engine.register_stream("ledger", _CHURN_STRUCTURE)
        for source in CHURN_QUERIES:
            for engine, sched, queries in (
                (raw_engine, raw_sched, raw_queries),
                (dom_engine, dom_sched, dom_queries),
            ):
                query = ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS)
                sched.add(query)
                queries.append(query)
        raw_sched.poll(now)
        dom_sched.poll(now)
        serial = 0
        for tick in range(12):
            batch = []
            for _ in range(rng.randrange(1, 5)):
                batch.append(_churn_envelope(rng, tick, serial))
                serial += 1
            raw_engine.feed_raw("ledger", batch)
            dom_engine.feed("ledger", [parse_filler(raw) for raw in batch])
            raw_sched.poll(now)
            dom_sched.poll(now)
            assert _snapshots(raw_queries) == _snapshots(dom_queries), (
                seed, tick,
            )
        for query, source in zip(raw_queries, CHURN_QUERIES):
            compiled = dom_engine.compile(
                source, Strategy.QAC_PLUS, backend="interpreted"
            )
            interpreted = dom_engine.execute(compiled, now=now)
            assert sorted(serialize(i) for i in query.last_result) == sorted(
                serialize(i) for i in interpreted
            ), (seed, source)


# ---------------------------------------------------------------------------
# feed_raw error parity with parse_filler
# ---------------------------------------------------------------------------

BAD_ENVELOPES = [
    "<filler id='1' tsid='2'",  # truncated markup
    "<notfiller/>",  # wrong root tag
    '<filler id="1" tsid="2" validTime="2003-01-01T00:00:00"/>',  # no payload
    '<filler id="1" tsid="2" validTime="2003-01-01T00:00:00">'
    "<a/><b/></filler>",  # two payloads
    '<filler tsid="2" validTime="2003-01-01T00:00:00"><a/></filler>',  # no id
    '<filler id="1" validTime="2003-01-01T00:00:00"><a/></filler>',  # no tsid
    '<filler id="x" tsid="2" validTime="2003-01-01T00:00:00"><a/></filler>',
    '<filler id="1" tsid="2" validTime="nope"><a/></filler>',
    "<a/><a/>",  # two top-level elements, neither a filler
    "just text",
]


class TestFeedRawErrorParity:
    @pytest.mark.parametrize("raw", BAD_ENVELOPES)
    def test_same_error_as_parse_filler(self, raw, credit_structure):
        engine = XCQLEngine()
        engine.register_stream("credit", credit_structure)
        with pytest.raises(Exception) as reference:
            parse_filler(raw)
        with pytest.raises(Exception) as streaming:
            engine.feed_raw("credit", [raw])
        assert type(streaming.value) is type(reference.value)
        assert str(streaming.value) == str(reference.value)

    def test_raw_round_trip_equals_parse_filler(self, credit_structure,
                                                credit_fillers):
        engine = XCQLEngine()
        engine.register_stream("credit", credit_structure)
        engine.feed_raw("credit", [f.to_xml() for f in credit_fillers])
        stored = engine.stores["credit"].fillers_since(0)
        assert len(stored) == len(credit_fillers)
        for lazy, eager in zip(stored, credit_fillers):
            assert lazy.filler_id == eager.filler_id
            assert lazy.tsid == eager.tsid
            assert str(lazy.valid_time) == str(eager.valid_time)
            assert serialize(lazy.content) == serialize(eager.content)
