"""Tests for the Tag Structure (repro.fragments.tagstructure)."""

import pytest

from repro.dom import serialize
from repro.dom.dtd import parse_dtd
from repro.fragments import TagStructure, TagType
from repro.fragments.tagstructure import TagStructureError

from tests.conftest import CREDIT_TAG_STRUCTURE_XML


class TestParsing:
    def test_from_xml(self, credit_structure):
        assert credit_structure.root.name == "creditAccounts"
        assert len(credit_structure) == 8

    def test_types(self, credit_structure):
        assert credit_structure.by_id(1).type is TagType.SNAPSHOT
        assert credit_structure.by_id(2).type is TagType.TEMPORAL
        assert credit_structure.by_id(5).type is TagType.EVENT

    def test_round_trip_through_xml(self, credit_structure):
        text = serialize(credit_structure.to_xml())
        again = TagStructure.from_xml(text)
        assert serialize(again.to_xml()) == text

    def test_build_assigns_preorder_ids(self):
        structure = TagStructure.build(
            {"name": "a", "children": [{"name": "b"}, {"name": "c"}]}
        )
        assert [t.tsid for t in structure.all_tags()] == [1, 2, 3]

    def test_duplicate_tsid_rejected(self):
        with pytest.raises(TagStructureError):
            TagStructure.from_xml(
                '<tag type="snapshot" id="1" name="a">'
                '<tag type="event" id="1" name="b"/></tag>'
            )

    def test_missing_attribute_rejected(self):
        with pytest.raises(TagStructureError):
            TagStructure.from_xml('<tag id="1" name="a"/>')

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            TagStructure.from_xml('<tag type="weird" id="1" name="a"/>')


class TestLookup:
    def test_by_id(self, credit_structure):
        assert credit_structure.by_id(5).name == "transaction"
        with pytest.raises(TagStructureError):
            credit_structure.by_id(99)
        assert credit_structure.get(99) is None

    def test_resolve_path(self, credit_structure):
        tag = credit_structure.resolve_path(["creditAccounts", "account", "transaction"])
        assert tag.tsid == 5
        with pytest.raises(TagStructureError):
            credit_structure.resolve_path(["creditAccounts", "nope"])
        with pytest.raises(TagStructureError):
            credit_structure.resolve_path(["wrongRoot"])

    def test_descendants_named(self, credit_structure):
        found = credit_structure.root.descendants_named("status")
        assert [t.tsid for t in found] == [7]
        assert credit_structure.root.descendants_named("creditAccounts") == [
            credit_structure.root
        ]

    def test_child(self, credit_structure):
        account = credit_structure.by_id(2)
        assert account.child("customer").tsid == 3
        assert account.child("nope") is None

    def test_path(self, credit_structure):
        assert credit_structure.by_id(7).path() == (
            "/creditAccounts/account/transaction/status"
        )

    def test_fragmented_tags(self, credit_structure):
        assert [t.name for t in credit_structure.fragmented_tags()] == [
            "account",
            "creditLimit",
            "transaction",
            "status",
        ]

    def test_nearest_fragmented_ancestor(self, credit_structure):
        status = credit_structure.by_id(7)
        assert status.nearest_fragmented_ancestor().name == "transaction"
        account = credit_structure.by_id(2)
        assert account.nearest_fragmented_ancestor() is None


class TestFromDTD:
    DTD = parse_dtd(
        """
        <!ELEMENT creditAccounts (account*)>
        <!ELEMENT account (customer, creditLimit*, transaction*)>
        <!ELEMENT customer (#PCDATA)>
        <!ELEMENT creditLimit (#PCDATA)>
        <!ELEMENT transaction (vendor, status*, amount)>
        <!ELEMENT vendor (#PCDATA)>
        <!ELEMENT status (#PCDATA)>
        <!ELEMENT amount (#PCDATA)>
        """
    )

    ROLES = {
        "account": "temporal",
        "creditLimit": "temporal",
        "transaction": "event",
        "status": "temporal",
    }

    def test_matches_hand_written(self, credit_structure):
        derived = TagStructure.from_dtd(self.DTD, self.ROLES)
        assert serialize(derived.to_xml()) == serialize(credit_structure.to_xml())

    def test_unlisted_default_to_snapshot(self):
        derived = TagStructure.from_dtd(self.DTD, {})
        assert all(t.type is TagType.SNAPSHOT for t in derived.all_tags())

    def test_recursive_dtd_rejected(self):
        recursive = parse_dtd("<!ELEMENT tag (tag*)>")
        with pytest.raises(TagStructureError, match="recursive"):
            TagStructure.from_dtd(recursive, {})


class TestTagTypeEnum:
    def test_is_fragmented(self):
        assert not TagType.SNAPSHOT.is_fragmented
        assert TagType.TEMPORAL.is_fragmented
        assert TagType.EVENT.is_fragmented
