"""The network transport: framing, batching, backpressure, catch-up.

Differential coverage for :mod:`repro.streams.netproto` (pure wire
layer) and :mod:`repro.streams.net` (asyncio server/client): every
end-to-end scenario asserts payload *byte identity* against what was
published, because the client feeds received text straight into the
engine's raw-event ingest.  There is no pytest-asyncio in the image, so
async scenarios run under ``asyncio.run`` inside sync tests.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core import XCQLEngine
from repro.core.optimizer import RoutingPredicate
from repro.core.translator import TranslationError
from repro.fragments.persist import Journal
from repro.fragments.tagstructure import TagStructure
from repro.streams import netproto as proto
from repro.streams.compression import TagCodec
from repro.streams.net import (
    BLOCK,
    DISCONNECT,
    DROP,
    StreamClient,
    StreamServer,
    Subscription,
)
from repro.streams.netproto import FrameDecoder, ProtocolError
from repro.streams.transport import (
    FILLER,
    TAG_STRUCTURE,
    Channel,
    LossyChannel,
    Message,
    peek_filler,
)
from tests.conftest import CREDIT_TAG_STRUCTURE_XML

TS_XML = (
    '<stream:structure><tag type="snapshot" id="1" name="report">'
    '<tag type="temporal" id="2" name="customer">'
    '<tag type="snapshot" id="3" name="name"/>'
    '<tag type="temporal" id="4" name="balance"/></tag>'
    '<tag type="event" id="5" name="alert"/></tag></stream:structure>'
)


def filler_xml(i: int, balance: int = 100, tsid: int = 2) -> str:
    day = (i % 27) + 1
    if tsid == 5:
        return (
            f'<filler id="{i}" tsid="5" validTime="2004-01-{day:02d}">'
            f"<alert>a{i}</alert></filler>"
        )
    return (
        f'<filler id="{i}" tsid="2" validTime="2004-01-{day:02d}">'
        f"<customer><name>c{i}</name><balance>{balance}</balance>"
        "</customer></filler>"
    )


def run(coro):
    return asyncio.run(coro)


async def wait_until(cond, timeout: float = 5.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not cond():
        if loop.time() > deadline:
            raise AssertionError("condition not met before timeout")
        await asyncio.sleep(0.01)


async def start_server(tmp_path, **kw):
    kw.setdefault("journal", Journal(os.path.join(tmp_path, "net.journal")))
    kw.setdefault("max_delay_ms", 2.0)
    server = StreamServer(**kw)
    await server.start()
    return server


# -- wire layer -------------------------------------------------------------------


class TestFraming:
    def test_control_roundtrip(self):
        frame = proto.encode_control(proto.HELLO, versions=[1], token="x")
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(frame)
        assert decoded.type == proto.HELLO
        assert decoded.name == "HELLO"
        assert decoded.header == {"versions": [1], "token": "x"}

    def test_batch_roundtrip(self):
        entries = [(1, filler_xml(1)), (2, filler_xml(2))]
        frame = proto.encode_batch(proto.BATCH, "credit", FILLER, entries)
        (decoded,) = FrameDecoder().feed(frame)
        assert decoded.type == proto.BATCH
        assert decoded.stream == "credit"
        assert decoded.kind == FILLER
        assert not decoded.compressed
        assert decoded.entries == entries

    def test_batch_multibyte_payloads(self):
        text = '<filler id="1" tsid="2"><customer><name>Ünïcødé — 漢字</name></customer></filler>'
        frame = proto.encode_batch(proto.BATCH, "crédit–漢", FILLER, [(7, text)])
        (decoded,) = FrameDecoder().feed(frame)
        assert decoded.stream == "crédit–漢"
        assert decoded.entries == [(7, text)]

    def test_chunk_boundaries_anywhere(self):
        frames = (
            proto.encode_control(proto.HELLO, versions=[1])
            + proto.encode_batch(
                proto.FEED, "s", TAG_STRUCTURE, [(0, TS_XML)]
            )
            + proto.encode_batch(
                proto.BATCH, "s", FILLER, [(i, filler_xml(i)) for i in range(5)]
            )
            + proto.encode_control(proto.BYE)
        )
        decoder = FrameDecoder()
        out = []
        for i in range(len(frames)):  # one byte at a time
            out.extend(decoder.feed(frames[i : i + 1]))
        assert [f.type for f in out] == [
            proto.HELLO,
            proto.FEED,
            proto.BATCH,
            proto.BYE,
        ]
        assert out[2].entries[4] == (4, filler_xml(4))
        assert decoder.pending_bytes == 0
        assert decoder.frames_decoded == 4

    def test_oversized_frame_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        import struct

        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack(">I", 1 << 20))

    def test_unknown_frame_type(self):
        import struct

        body = bytes([99]) + b"{}"
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_truncated_batch_entry(self):
        frame = bytearray(
            proto.encode_batch(proto.BATCH, "s", FILLER, [(1, "x" * 40)])
        )
        # Shrink the body but keep the advertised entry length.
        clipped = frame[: len(frame) - 10]
        import struct

        clipped[0:4] = struct.pack(">I", len(clipped) - 4)
        with pytest.raises(ProtocolError, match="truncated"):
            FrameDecoder().feed(bytes(clipped))

    def test_version_negotiation(self):
        assert proto.choose_version([1]) == 1
        assert proto.choose_version([1, 2, 99]) == 2  # highest common is v2 now
        assert proto.choose_version([2]) == 2
        assert proto.choose_version([99]) is None
        assert proto.choose_version([]) is None
        assert proto.choose_version(None) is None
        assert proto.choose_version(["junk", 1.0]) == 1
        # json accepts Infinity/NaN and booleans are ints; neither is a
        # protocol version, and none may crash negotiation.
        assert proto.choose_version([float("inf"), float("nan"), True]) is None

    def test_worker_frames_need_v2(self):
        assert proto.PROTOCOL_VERSIONS == (1, 2)
        for ftype in sorted(proto.WORKER_TYPES):
            assert proto.min_version(ftype) == 2
        for ftype in (proto.HELLO, proto.SUBSCRIBE, proto.BATCH, proto.ACK):
            assert proto.min_version(ftype) == 1


class TestStreamingCodec:
    def test_compress_roundtrip_byte_exact(self):
        codec = TagCodec(TagStructure.from_xml(TS_XML))
        text = (
            '<filler id="7" tsid="2" validTime="2004-02-01">'
            '<customer note="a&gt;b"><name>Ünïcødé — 漢字</name>'
            "<balance>42</balance><!-- c --><unknown/></customer></filler>"
        )
        for size in (1, 3, 17, 4096):
            chunks = [text[i : i + size] for i in range(0, len(text), size)]
            encoded = "".join(codec.compress_iter(chunks))
            assert "customer" not in encoded  # names actually rewritten
            back = [encoded[i : i + size] for i in range(0, len(encoded), size)]
            assert "".join(codec.decompress_iter(back)) == text

    def test_compress_iter_chunking_invariant(self):
        codec = TagCodec(TagStructure.from_xml(TS_XML))
        text = filler_xml(3) * 5
        whole = "".join(codec.compress_iter([text]))
        tiny = "".join(
            codec.compress_iter([text[i : i + 2] for i in range(0, len(text), 2)])
        )
        assert whole == tiny


# -- satellite units --------------------------------------------------------------


class TestTransportSatellites:
    def test_wire_size_memoized(self):
        message = Message(FILLER, "s", "é" * 1000)
        assert message.wire_size == 2000
        assert message.__dict__["wire_size"] == 2000  # cached on the instance
        assert message.wire_size == 2000

    def test_channel_stats(self):
        channel = Channel()
        channel.subscribe(lambda m: None)
        channel.publish(Message(FILLER, "s", "<x/>"))
        assert channel.stats() == {
            "kind": "channel",
            "published": 1,
            "delivered": 1,
            "subscribers": 1,
        }

    def test_lossy_channel_stats_counters(self):
        channel = LossyChannel(loss_rate=0.5, duplicate_rate=0.5, seed=7)
        got = []
        channel.subscribe(got.append)
        for i in range(200):
            channel.publish(Message(FILLER, "s", f"<f{i}/>"))
        stats = channel.stats()
        assert stats["dropped"] == channel.dropped > 0
        assert stats["duplicated"] == channel.duplicated > 0
        assert stats["delivered"] == 200 - stats["dropped"]
        assert len(got) == stats["delivered"] + stats["duplicated"]

    def test_pipe_to_bridges_channels(self):
        upstream, downstream = Channel(), Channel()
        got = []
        downstream.subscribe(got.append)
        hook = upstream.pipe_to(downstream.publish)
        upstream.publish(Message(FILLER, "s", "<a/>"))
        upstream.unsubscribe(hook)
        upstream.publish(Message(FILLER, "s", "<b/>"))
        assert [m.payload for m in got] == ["<a/>"]

    def test_peek_filler_multibyte_text(self):
        payload = (
            '<filler id="12" tsid="2" validTime="2004-01-01">'
            "<customer><name>Ünïcødé — 漢字 𝄞</name>"
            '<hole id="99"/></customer></filler>'
        )
        assert peek_filler(payload) == (12, 2, [99])

    def test_peek_filler_attribute_value_with_gt(self):
        # escape_attribute leaves ">" alone, so payload attributes
        # containing ">" legitimately appear on the wire; the envelope
        # peek must not mistake them for the end of a tag.
        payload = (
            '<filler id="3" tsid="2" validTime="2004-01-01">'
            '<customer note="a&gt;b" cmp="x > y"><name>n</name>'
            '<hole id="4"/></customer></filler>'
        )
        assert peek_filler(payload) == (3, 2, [4])


class TestJournalIndexed:
    def test_read_indexed_matches_read(self, tmp_path):
        journal = Journal(tmp_path / "j.log")
        journal.record(Message(TAG_STRUCTURE, "credit", TS_XML))
        for i in range(4):
            journal.record(Message(FILLER, "credit", filler_xml(i)))
        plain = list(journal.read())
        indexed = list(journal.read_indexed())
        assert [seq for seq, _ in indexed] == [1, 2, 3, 4, 5]
        assert [m.kind for _, m in indexed] == [m.kind for m in plain]
        assert journal.last_seq == 5

    def test_read_indexed_is_byte_exact(self, tmp_path):
        # read() reparses and reserializes; read_indexed must return the
        # exact wire text (the raw-ingest path depends on it).
        journal = Journal(tmp_path / "j.log")
        payload = (
            '<filler id="1" tsid="2" validTime="2004-01-01">'
            '<customer note="a&gt;b"><name>漢字</name></customer></filler>'
        )
        journal.record(Message(FILLER, "credit", payload))
        ((seq, message),) = list(journal.read_indexed())
        assert seq == 1
        assert message.payload == payload

    def test_read_indexed_skips_before_parsing(self, tmp_path):
        journal = Journal(tmp_path / "j.log")
        for i in range(10):
            journal.record(Message(FILLER, "credit", filler_xml(i)))
        tail = list(journal.read_indexed(after=7))
        assert [seq for seq, _ in tail] == [8, 9, 10]
        assert tail[0][1].payload == filler_xml(7)

    def test_missing_journal(self, tmp_path):
        journal = Journal(tmp_path / "absent.log")
        assert list(journal.read_indexed()) == []
        assert journal.last_seq == 0

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "j.log"
        path.write_text("not a journal line\n")
        with pytest.raises(ValueError, match="corrupt"):
            list(Journal(path).read_indexed())


class TestEngineDeliver:
    def test_structure_then_filler(self):
        engine = XCQLEngine()
        assert engine.deliver(Message(TAG_STRUCTURE, "credit", TS_XML)) == 0
        assert "credit" in engine.stores
        assert engine.deliver(Message(FILLER, "credit", filler_xml(1))) == 1
        assert engine.deliver(Message(FILLER, "credit", filler_xml(1))) == 0
        assert engine.stores["credit"].filler_count == 1

    def test_filler_before_structure_raises(self):
        engine = XCQLEngine()
        with pytest.raises(TranslationError, match="unknown stream"):
            engine.deliver(Message(FILLER, "ghost", filler_xml(1)))

    def test_unknown_kind(self):
        engine = XCQLEngine()
        with pytest.raises(ValueError, match="unknown message kind"):
            engine.deliver(Message("noise", "credit", "<x/>"))


# -- end-to-end scenarios -----------------------------------------------------------


class TestEndToEnd:
    def test_live_delivery_multi_client_convergence(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            engines = [XCQLEngine(), XCQLEngine()]
            clients = []
            for engine in engines:
                client = StreamClient("127.0.0.1", server.port, engine=engine)
                assert await client.connect() == 2
                await asyncio.wait_for(
                    client.subscribe([Subscription("credit")]), 5
                )
                clients.append(client)
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            for i in range(20):
                await server.publish(Message(FILLER, "credit", filler_xml(i)))
            await wait_until(lambda: all(c.received == 21 for c in clients))
            for engine in engines:
                store = engine.stores["credit"]
                assert store.filler_count == 20
            # Byte-identical arrival everywhere, applied through feed_raw.
            assert [
                f.to_xml() for f in engines[0].stores["credit"].fillers_since(0)
            ] == [
                f.to_xml() for f in engines[1].stores["credit"].fillers_since(0)
            ]
            for client in clients:
                await client.close()
            await server.close()

        run(scenario())

    def test_batching_coalesces_frames(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path, max_batch_bytes=1 << 20, max_delay_ms=50.0
            )
            got = []
            client = StreamClient("127.0.0.1", server.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(client.subscribe([Subscription("s")]), 5)
            await server.publish(Message(TAG_STRUCTURE, "s", TS_XML))
            for i in range(100):
                await server.publish(Message(FILLER, "s", filler_xml(i)))
            await wait_until(lambda: len(got) == 101)
            # 100 fillers crossed the wire in a handful of frames, not 100.
            assert client.batches <= 10
            await client.close()
            await server.close()

        run(scenario())

    def test_flush_on_size_bound(self, tmp_path):
        async def scenario():
            # A tiny byte bound forces a flush per envelope even though
            # the delay window would have coalesced them.
            server = await start_server(
                tmp_path, max_batch_bytes=10, max_delay_ms=1000.0
            )
            got = []
            client = StreamClient("127.0.0.1", server.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(client.subscribe([Subscription("s")]), 5)
            for i in range(5):
                await server.publish(Message(FILLER, "s", filler_xml(i)))
            await wait_until(lambda: len(got) == 5, timeout=3.0)
            assert client.batches == 5
            await client.close()
            await server.close()

        run(scenario())

    def test_compressed_batches_are_byte_exact(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path,
                compress_threshold=64,  # force compression
                max_batch_bytes=1 << 20,
                max_delay_ms=20.0,
            )
            engine = XCQLEngine()
            got = []
            client = StreamClient(
                "127.0.0.1", server.port, engine=engine, on_message=got.append
            )
            await client.connect()
            await asyncio.wait_for(client.subscribe([Subscription("credit")]), 5)
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            published = [filler_xml(i, balance=1000 + i) for i in range(30)]
            for payload in published:
                await server.publish(Message(FILLER, "credit", payload))
            await wait_until(lambda: len(got) == 31)
            assert client.compressed_batches > 0
            assert [m.payload for m in got[1:]] == published
            assert engine.stores["credit"].filler_count == 30
            await client.close()
            await server.close()

        run(scenario())

    def test_slow_consumer_drop_policy_bounds_memory(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path,
                slow_policy=DROP,
                queue_frames=4,
                max_batch_bytes=1024,
                max_delay_ms=1.0,
            )
            # A deliberately slow consumer: handshakes, subscribes, then
            # never reads another byte off the socket.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(proto.encode_control(proto.HELLO, versions=[1]))
            writer.write(
                proto.encode_control(
                    proto.SUBSCRIBE,
                    subscriptions=[{"stream": "s"}],
                    catchup=False,
                )
            )
            await writer.drain()
            await wait_until(
                lambda: server._conns and server._conns[0].subscriptions
            )
            big = "<customer>" + "x" * 4096 + "</customer>"
            for i in range(2000):
                await server.publish(
                    Message(
                        FILLER,
                        "s",
                        f'<filler id="{i}" tsid="2" validTime="2004-01-01">'
                        f"{big}</filler>",
                    )
                )
            stats = server.stats()
            assert stats["dropped_frames"] > 0  # shedding, not buffering
            assert stats["queued_frames"] <= 4  # bounded queue held
            assert stats["disconnected_slow"] == 0
            writer.close()
            await server.close()

        run(scenario())

    def test_slow_consumer_disconnect_policy(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path,
                slow_policy=DISCONNECT,
                queue_frames=2,
                max_batch_bytes=1024,
                max_delay_ms=1.0,
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(proto.encode_control(proto.HELLO, versions=[1]))
            writer.write(
                proto.encode_control(
                    proto.SUBSCRIBE,
                    subscriptions=[{"stream": "s"}],
                    catchup=False,
                )
            )
            await writer.drain()
            await wait_until(
                lambda: server._conns and server._conns[0].subscriptions
            )
            big = "<customer>" + "x" * 4096 + "</customer>"
            for i in range(2000):
                await server.publish(
                    Message(
                        FILLER,
                        "s",
                        f'<filler id="{i}" tsid="2" validTime="2004-01-01">'
                        f"{big}</filler>",
                    )
                )
                if server.disconnected_slow:
                    break
            assert server.disconnected_slow == 1
            assert len(server._conns) == 0
            writer.close()
            await server.close()

        run(scenario())

    def test_block_policy_keeps_everything(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path,
                slow_policy=BLOCK,
                queue_frames=2,
                max_batch_bytes=256,
                max_delay_ms=1.0,
            )
            got = []
            client = StreamClient("127.0.0.1", server.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(client.subscribe([Subscription("s")]), 5)
            for i in range(200):
                await server.publish(Message(FILLER, "s", filler_xml(i)))
            await wait_until(lambda: len(got) == 200)
            assert [m.payload for m in got] == [filler_xml(i) for i in range(200)]
            assert server.stats()["dropped_frames"] == 0
            await client.close()
            await server.close()

        run(scenario())

    def test_kill_and_reconnect_catchup_byte_identical(self, tmp_path):
        """The acceptance scenario: a killed client, reconnected with its
        last seen seq, converges to the always-connected client's bytes."""

        async def scenario():
            server = await start_server(tmp_path)
            steady_got, flaky_got = [], []
            steady = StreamClient(
                "127.0.0.1", server.port, on_message=steady_got.append
            )
            await steady.connect()
            await asyncio.wait_for(steady.subscribe([Subscription("credit")]), 5)

            flaky = StreamClient(
                "127.0.0.1", server.port, on_message=flaky_got.append
            )
            await flaky.connect()
            await asyncio.wait_for(flaky.subscribe([Subscription("credit")]), 5)

            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            for i in range(10):
                await server.publish(Message(FILLER, "credit", filler_xml(i)))
            await wait_until(lambda: flaky.received == 11 and steady.received == 11)

            # Kill the flaky client mid-stream (no BYE, socket just dies).
            flaky._writer.close()
            await flaky.closed.wait()
            survivor_seq = flaky.last_seen
            for i in range(10, 25):
                await server.publish(Message(FILLER, "credit", filler_xml(i)))
            await wait_until(lambda: steady.received == 26)

            # Reconnect with the stored seq; journal replay fills the gap.
            revived = StreamClient(
                "127.0.0.1", server.port, on_message=flaky_got.append
            )
            await revived.connect()
            await asyncio.wait_for(
                revived.subscribe([Subscription("credit")], catchup=True), 5
            )
            ack = await asyncio.wait_for(revived.catchup(after=survivor_seq), 5)
            assert ack["catchup"] is True
            assert ack["replayed"] == 15
            await wait_until(lambda: len(flaky_got) == len(steady_got))

            assert [(m.kind, m.stream, m.payload) for m in flaky_got] == [
                (m.kind, m.stream, m.payload) for m in steady_got
            ]
            await steady.close()
            await revived.close()
            await server.close()

        run(scenario())

    def test_feed_producer_path(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            got = []
            subscriber = StreamClient(
                "127.0.0.1", server.port, on_message=got.append
            )
            await subscriber.connect()
            await asyncio.wait_for(subscriber.subscribe([Subscription("credit")]), 5)

            producer = StreamClient(
                "127.0.0.1", server.port, feed_compress_threshold=1
            )
            await producer.connect()
            published = [Message(TAG_STRUCTURE, "credit", TS_XML)] + [
                Message(FILLER, "credit", filler_xml(i)) for i in range(8)
            ]
            await producer.feed(published)
            await wait_until(lambda: len(got) == 9)
            # Compressed FEED frames still land byte-exact after the
            # server's streaming decompression.
            assert [m.payload for m in got] == [m.payload for m in published]
            assert server.fed_entries == 9
            assert server.journal.last_seq == 9
            await producer.close()
            await subscriber.close()
            await server.close()

        run(scenario())

    def test_unsupported_version_refused(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(proto.encode_control(proto.HELLO, versions=[99]))
            await writer.drain()
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = await asyncio.wait_for(reader.read(65536), 5)
                assert data, "server closed without an ERROR frame"
                frames = decoder.feed(data)
            assert frames[0].type == proto.ERROR
            assert frames[0].header["code"] == "unsupported-version"
            assert await asyncio.wait_for(reader.read(65536), 5) == b""
            writer.close()
            await server.close()

        run(scenario())


class TestRoutingFrontDoor:
    def test_tsid_narrowed_subscription_skips(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            got = []
            client = StreamClient("127.0.0.1", server.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(
                client.subscribe([Subscription("credit", tsid=5)]), 5
            )
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            for i in range(6):
                await server.publish(
                    Message(FILLER, "credit", filler_xml(i, tsid=2))
                )
            for i in range(6, 9):
                await server.publish(
                    Message(FILLER, "credit", filler_xml(i, tsid=5))
                )
            await wait_until(lambda: len(got) == 4)  # structure + 3 alerts
            await asyncio.sleep(0.05)
            assert len(got) == 4
            assert all(
                peek_filler(m.payload)[1] == 5 for m in got if m.kind == FILLER
            )
            assert server.routing_skips == 6
            await client.close()
            await server.close()

        run(scenario())

    def test_predicate_probe_skips_non_matching(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            predicate = RoutingPredicate(
                tuple_tag="customer",
                path=("balance",),
                attribute=None,
                text_only=False,
                op=">",
                value=500.0,
                numeric=True,
            )
            got = []
            client = StreamClient("127.0.0.1", server.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(
                client.subscribe(
                    [Subscription("credit", tsid=2, predicate=predicate)]
                ),
                5,
            )
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            await server.publish(
                Message(FILLER, "credit", filler_xml(1, balance=100))
            )
            await server.publish(
                Message(FILLER, "credit", filler_xml(2, balance=900))
            )
            await wait_until(lambda: len(got) == 2)  # structure + matching
            await asyncio.sleep(0.05)
            assert peek_filler(got[1].payload)[0] == 2
            assert server.routing_probes >= 2
            assert server.routing_skips == 1
            await client.close()
            await server.close()

        run(scenario())

    def test_supersede_wakes_past_predicate(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            predicate = RoutingPredicate(
                tuple_tag="customer",
                path=("balance",),
                attribute=None,
                text_only=False,
                op=">",
                value=500.0,
                numeric=True,
            )
            got = []
            client = StreamClient("127.0.0.1", server.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(
                client.subscribe(
                    [Subscription("credit", tsid=2, predicate=predicate)]
                ),
                5,
            )
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            # First version fails the predicate: skipped.
            await server.publish(
                Message(FILLER, "credit", filler_xml(1, balance=100))
            )
            # A second version of the same non-event filler must be
            # delivered even though its balance also fails the predicate:
            # the previous version's annotations move regardless.
            await server.publish(
                Message(FILLER, "credit", filler_xml(1, balance=50))
            )
            await wait_until(lambda: len(got) == 2)
            assert peek_filler(got[1].payload) == (1, 2, [])
            assert "50" in got[1].payload
            await client.close()
            await server.close()

        run(scenario())


class TestServerBootstrap:
    def test_structures_recovered_from_journal(self, tmp_path):
        async def scenario():
            journal = Journal(os.path.join(tmp_path, "boot.journal"))
            server = await start_server(tmp_path, journal=journal)
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            await server.publish(Message(FILLER, "credit", filler_xml(1)))
            await server.close()

            # A restarted server re-derives schemas (and codecs) from the
            # journal and keeps numbering where it left off.
            reborn = StreamServer(journal=journal, max_delay_ms=2.0)
            await reborn.start()
            assert reborn.seq == 2
            assert "credit" in reborn._structures
            got = []
            client = StreamClient("127.0.0.1", reborn.port, on_message=got.append)
            await client.connect()
            await asyncio.wait_for(
                client.subscribe([Subscription("credit")], catchup=True), 5
            )
            await asyncio.wait_for(client.catchup(after=0), 5)
            await wait_until(lambda: len(got) == 2)
            assert got[1].payload == filler_xml(1)
            await client.close()
            await reborn.close()

        run(scenario())

    def test_fresh_subscriber_receives_current_schema(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            await server.publish(Message(FILLER, "credit", filler_xml(1)))
            engine = XCQLEngine()
            client = StreamClient("127.0.0.1", server.port, engine=engine)
            await client.connect()
            # No catch-up: live-only subscription still learns the schema.
            await asyncio.wait_for(client.subscribe([Subscription("credit")]), 5)
            await server.publish(Message(FILLER, "credit", filler_xml(2)))
            await wait_until(lambda: client.received == 2)
            assert engine.stores["credit"].filler_count == 1
            await client.close()
            await server.close()

        run(scenario())


# -- the WORKER role (protocol v2) ------------------------------------------------


async def _raw_connect(port: int, versions):
    """Open a raw protocol connection; returns (reader, writer, decoder,
    negotiated HELLO frame)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    decoder = FrameDecoder()
    writer.write(proto.encode_control(proto.HELLO, versions=list(versions)))
    await writer.drain()
    frames = []
    while not frames:
        data = await asyncio.wait_for(reader.read(65536), 5)
        assert data, "server closed during the handshake"
        frames = decoder.feed(data)
    return reader, writer, decoder, frames[0]


async def _exchange(reader, writer, decoder, data, count=1):
    """Send one frame, await ``count`` reply frames."""
    writer.write(data)
    await writer.drain()
    frames = []
    while len(frames) < count:
        chunk = await asyncio.wait_for(reader.read(65536), 5)
        assert chunk, "server closed mid-exchange"
        frames.extend(decoder.feed(chunk))
    return frames


class TestWorkerRole:
    def test_worker_host_serves_dispatch_poll_respawn(self, tmp_path):
        """A v2 peer drives a full shard lifecycle with raw frames."""

        async def scenario():
            server = await start_server(tmp_path, worker=True)
            reader, writer, decoder, hello = await _raw_connect(
                server.port, proto.PROTOCOL_VERSIONS
            )
            assert hello.type == proto.HELLO
            assert hello.header["version"] == 2

            (ack,) = await _exchange(
                reader, writer, decoder,
                proto.encode_control(
                    proto.DISPATCH, id=1, cmd="configure", args=[{}]
                ),
            )
            assert ack.type == proto.ACK
            assert ack.header == {"id": 1, "ok": True, "result": True}

            (ack,) = await _exchange(
                reader, writer, decoder,
                proto.encode_control(
                    proto.DISPATCH, id=2, cmd="register_stream",
                    args=["credit", TS_XML],
                ),
            )
            assert ack.header["ok"] is True

            (reply,) = await _exchange(
                reader, writer, decoder,
                proto.encode_control(
                    proto.POLL, id=3, now="2004-02-01T00:00:00"
                ),
            )
            assert reply.type == proto.POLL_REPLY
            assert reply.header["id"] == 3
            assert reply.header["emitted"] == {}
            assert "watermarks" in reply.header

            (ack,) = await _exchange(
                reader, writer, decoder,
                proto.encode_control(proto.RESPAWN, id=4),
            )
            assert ack.type == proto.ACK
            assert ack.header == {"id": 4, "ok": True, "result": True}
            # RESPAWN discarded the shard: its streams are gone, and the
            # error comes back as a failed ACK, not a dead connection.
            (ack,) = await _exchange(
                reader, writer, decoder,
                proto.encode_control(
                    proto.DISPATCH, id=5, cmd="feed",
                    args=["credit", False, [filler_xml(1)]],
                ),
            )
            assert ack.header["ok"] is False
            assert "credit" in ack.header["error"]

            stats = server.stats()
            assert stats["worker"]["commands"] == 3
            assert stats["worker"]["polls"] == 1
            assert stats["worker"]["resets"] == 1
            assert stats["worker"]["hosted_shards"] == 1
            writer.close()
            await server.close()

        run(scenario())

    def test_v1_peer_served_degraded_not_refused(self, tmp_path):
        """A v1-only peer still gets the full v1 surface on a worker
        host; only the WORKER frames are out of bounds."""

        async def scenario():
            server = await start_server(tmp_path, worker=True)
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            reader, writer, decoder, hello = await _raw_connect(
                server.port, [1]
            )
            assert hello.header["version"] == 1  # served, not refused

            # Reply is an ACK plus the current schema announcement.
            frames = await _exchange(
                reader, writer, decoder,
                proto.encode_control(
                    proto.SUBSCRIBE,
                    subscriptions=[{"stream": "credit"}],
                    catchup=False,
                ),
                count=2,
            )
            ack = next(f for f in frames if f.type == proto.ACK)
            assert ack.header.get("subscribed") == 1
            assert any(f.type == proto.BATCH for f in frames)

            # A WORKER frame on the v1 connection is a protocol error:
            # the peer negotiated a version without those types.
            frames = await _exchange(
                reader, writer, decoder,
                proto.encode_control(proto.DISPATCH, id=1, cmd="stats",
                                     args=[]),
            )
            assert frames[0].type == proto.ERROR
            assert "v2" in frames[0].header["detail"]
            assert await asyncio.wait_for(reader.read(65536), 5) == b""
            writer.close()
            await server.close()

        run(scenario())

    def test_worker_frames_refused_without_worker_role(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)  # worker=False
            reader, writer, decoder, hello = await _raw_connect(
                server.port, proto.PROTOCOL_VERSIONS
            )
            assert hello.header["version"] == 2
            frames = await _exchange(
                reader, writer, decoder,
                proto.encode_control(
                    proto.DISPATCH, id=1, cmd="configure", args=[{}]
                ),
            )
            assert frames[0].type == proto.ERROR
            assert frames[0].header["code"] == "no-worker-role"
            writer.close()
            await server.close()

        run(scenario())


# -- predicate-narrowed catch-up --------------------------------------------------


class TestPredicateCatchup:
    PREDICATE = RoutingPredicate(
        tuple_tag="customer",
        path=("balance",),
        attribute=None,
        text_only=False,
        op=">",
        value=500.0,
        numeric=True,
    )

    async def _publish_history(self, server):
        """Mixed history: matches, non-matches, supersedes, other tsids."""
        await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
        await server.publish(Message(FILLER, "credit", filler_xml(1, 100)))
        await server.publish(Message(FILLER, "credit", filler_xml(2, 900)))
        # id=1 again: fails the predicate too, but supersedes → delivered.
        await server.publish(Message(FILLER, "credit", filler_xml(1, 50)))
        await server.publish(Message(FILLER, "credit", filler_xml(3, 700)))
        await server.publish(Message(FILLER, "credit", filler_xml(4, 10)))
        await server.publish(Message(FILLER, "credit", filler_xml(9, tsid=5)))
        await server.publish(Message(FILLER, "credit", filler_xml(2, 40)))

    def test_catchup_replay_byte_identical_to_live_delivery(self, tmp_path):
        """The satellite acceptance: a predicate subscriber replaying the
        journal sees exactly the bytes a live predicate subscriber saw —
        supersede state is reconstructed, not approximated — and exactly
        what client-side filtering of an unfiltered replay derives."""

        async def scenario():
            server = await start_server(tmp_path)
            live_got = []
            live = StreamClient(
                "127.0.0.1", server.port, on_message=live_got.append
            )
            await live.connect()
            await asyncio.wait_for(
                live.subscribe(
                    [Subscription("credit", tsid=2, predicate=self.PREDICATE)]
                ),
                5,
            )
            await self._publish_history(server)
            # structure + 900 + supersede(50) + 700 + supersede(40)
            await wait_until(lambda: len(live_got) == 5)
            await asyncio.sleep(0.05)
            assert len(live_got) == 5

            late_got = []
            late = StreamClient(
                "127.0.0.1", server.port, on_message=late_got.append
            )
            await late.connect()
            await asyncio.wait_for(
                late.subscribe(
                    [Subscription("credit", tsid=2, predicate=self.PREDICATE)],
                    catchup=True,
                ),
                5,
            )
            ack = await asyncio.wait_for(late.catchup(after=0), 5)
            assert ack["replayed"] == 5
            assert ack["skipped"] == 3  # 100, 10, and the tsid-5 alert
            await wait_until(lambda: len(late_got) == len(live_got))
            assert [(m.kind, m.payload) for m in late_got] == [
                (m.kind, m.payload) for m in live_got
            ]
            assert server.replay_skipped == 3
            assert server.stats()["replay_skipped"] == 3

            # Unfiltered replay + client-side narrowing derives the same
            # byte stream: the server-side skip loses nothing.
            full_got = []
            full = StreamClient(
                "127.0.0.1", server.port, on_message=full_got.append
            )
            await full.connect()
            await asyncio.wait_for(
                full.subscribe([Subscription("credit")], catchup=True), 5
            )
            full_ack = await asyncio.wait_for(full.catchup(after=0), 5)
            assert full_ack["replayed"] == 8
            assert full_ack["skipped"] == 0
            await wait_until(lambda: len(full_got) == 8)
            versions_seen: set[int] = set()
            derived = []
            for message in full_got:
                if message.kind != FILLER:
                    derived.append((message.kind, message.payload))
                    continue
                filler_id, tsid, _holes = peek_filler(message.payload)
                if tsid != 2:
                    continue
                supersede = filler_id in versions_seen
                versions_seen.add(filler_id)
                balance = float(
                    message.payload.split("<balance>")[1].split("<")[0]
                )
                if supersede or balance > 500.0:
                    derived.append((message.kind, message.payload))
            assert derived == [(m.kind, m.payload) for m in late_got]

            await live.close()
            await late.close()
            await full.close()
            await server.close()

        run(scenario())

    def test_restarted_server_narrows_with_recovered_supersede_state(
        self, tmp_path
    ):
        """Version counts are rebuilt from the journal on restart, so a
        catch-up against a fresh process makes the same skip decisions
        the original made live."""

        async def scenario():
            journal = Journal(os.path.join(tmp_path, "narrow.journal"))
            server = await start_server(tmp_path, journal=journal)
            await self._publish_history(server)
            await server.close()

            reborn = StreamServer(journal=journal, max_delay_ms=2.0)
            await reborn.start()
            got = []
            client = StreamClient(
                "127.0.0.1", reborn.port, on_message=got.append
            )
            await client.connect()
            await asyncio.wait_for(
                client.subscribe(
                    [Subscription("credit", tsid=2, predicate=self.PREDICATE)],
                    catchup=True,
                ),
                5,
            )
            ack = await asyncio.wait_for(client.catchup(after=0), 5)
            assert ack["replayed"] == 5
            assert ack["skipped"] == 3
            await client.close()
            await reborn.close()

        run(scenario())


class TestServerStatsAggregation:
    def test_outbox_counters_survive_disconnects(self, tmp_path):
        """Per-connection outbox tallies fold into a retired aggregate on
        close instead of vanishing with the connection."""

        async def scenario():
            server = await start_server(tmp_path)
            client_got = []
            client = StreamClient(
                "127.0.0.1", server.port, on_message=client_got.append
            )
            await client.connect()
            await asyncio.wait_for(client.subscribe([Subscription("credit")]), 5)
            await server.publish(Message(TAG_STRUCTURE, "credit", TS_XML))
            for i in range(5):
                await server.publish(Message(FILLER, "credit", filler_xml(i)))
            await wait_until(lambda: len(client_got) == 6)
            live = server.stats()["outboxes"]
            assert live["frames_sent"] > 0
            await client.close()
            await asyncio.sleep(0.05)
            retired = server.stats()["outboxes"]
            assert retired["frames_sent"] >= live["frames_sent"]
            assert retired["bytes_sent"] > 0
            await server.close()

        run(scenario())
