"""Tests for derived output streams (paper §10: continuous output)."""

import pytest

from repro import (
    Channel,
    SimulatedClock,
    Strategy,
    StreamClient,
    StreamServer,
    TagStructure,
)
from repro.dom import Element, parse_document
from repro.fragments.tagstructure import TagType
from repro.streams.derived import DerivedStream, infer_result_structure

from tests.conftest import CREDIT_TAG_STRUCTURE_XML


class TestInferStructure:
    def test_sample_becomes_event(self):
        sample = parse_document(
            '<alert id="1"><account>x</account></alert>'
        ).document_element
        structure = infer_result_structure(sample)
        assert structure.root.name == "results"
        alert = structure.root.child("alert")
        assert alert.type is TagType.EVENT
        assert alert.child("account").type is TagType.SNAPSHOT

    def test_repeated_children_declared_once(self):
        sample = parse_document("<r><x>1</x><x>2</x><y/></r>").document_element
        structure = infer_result_structure(sample)
        names = [c.name for c in structure.root.child("r").children]
        assert names == ["x", "y"]

    def test_tsids_unique(self):
        sample = parse_document("<r><a><b/></a><c/></r>").document_element
        structure = infer_result_structure(sample)
        tsids = [t.tsid for t in structure.all_tags()]
        assert len(tsids) == len(set(tsids))


@pytest.fixture()
def cascade():
    """source stream -> alert query -> derived stream -> downstream client."""
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    clock = SimulatedClock("2003-10-01T00:00:00")
    source_channel = Channel()
    derived_channel = Channel()

    first_client = StreamClient(clock)
    first_client.tune_in(source_channel)
    server = StreamServer("credit", structure, source_channel, clock)
    server.announce()
    server.publish_document(
        parse_document(
            "<creditAccounts><account id='1'>"
            "<customer>X</customer><creditLimit>100</creditLimit>"
            "</account></creditAccounts>"
        )
    )
    alert_query = first_client.register_query(
        'for $a in stream("credit")//account '
        "where sum($a/transaction?[now-PT1H,now]/amount) >= 50 "
        'return <alert account="{$a/@id}"><level>high</level></alert>',
        strategy=Strategy.QAC,
    )
    derived = DerivedStream("alerts", derived_channel, clock)
    derived.attach(alert_query)

    downstream = StreamClient(clock)
    downstream.tune_in(derived_channel)
    return clock, server, first_client, derived, downstream


def transaction(txn_id: str, amount: str) -> Element:
    txn = Element("transaction", {"id": txn_id})
    vendor = Element("vendor")
    vendor.add_text("V")
    txn.append(vendor)
    amt = Element("amount")
    amt.add_text(amount)
    txn.append(amt)
    return txn


class TestDerivedStream:
    def test_results_republished(self, cascade):
        clock, server, first_client, derived, downstream = cascade
        account = server.hole_id(0, "account", "1")
        server.emit_event(account, transaction("t1", "80"))
        first_client.poll()
        assert derived.published == 1
        assert "alerts" in downstream.engine.stores

    def test_downstream_can_query_alerts(self, cascade):
        clock, server, first_client, derived, downstream = cascade
        account = server.hole_id(0, "account", "1")
        server.emit_event(account, transaction("t1", "80"))
        first_client.poll()
        result = downstream.engine.execute(
            'for $w in stream("alerts")//alert return $w/@account', now=clock.now()
        )
        assert [a.value for a in result] == ["1"]

    def test_cascaded_continuous_query(self, cascade):
        """A continuous query over the derived stream fires on new alerts."""
        clock, server, first_client, derived, downstream = cascade
        seen: list = []
        downstream_query = None

        account = server.hole_id(0, "account", "1")
        server.emit_event(account, transaction("t1", "80"))
        first_client.poll()  # first alert creates the derived stream

        downstream_query = downstream.register_query(
            'count(stream("alerts")//alert)', strategy=Strategy.QAC, emit="full"
        )
        assert downstream_query.evaluate(clock.now()) == [1]

        # A second account triggers a second, distinct alert.
        new_account = Element("account", {"id": "2"})
        customer = Element("customer")
        customer.add_text("Y")
        new_account.append(customer)
        server.insert_child(0, new_account)
        account2 = server.hole_id(0, "account", "2")
        clock.advance("PT1M")
        server.emit_event(account2, transaction("t2", "70"))
        first_client.poll()
        assert downstream_query.evaluate(clock.now()) == [2]

    def test_alert_events_carry_time(self, cascade):
        clock, server, first_client, derived, downstream = cascade
        account = server.hole_id(0, "account", "1")
        clock.advance("PT30M")
        server.emit_event(account, transaction("t1", "80"))
        first_client.poll()
        result = downstream.engine.execute(
            'for $w in stream("alerts")//alert return vtFrom($w)', now=clock.now()
        )
        assert [str(t) for t in result] == ["2003-10-01T00:30:00"]

    def test_atomic_results_skipped(self):
        clock = SimulatedClock("2003-01-01T00:00:00")
        derived = DerivedStream("out", Channel(), clock)
        derived.publish_results([1, "text"])
        assert derived.published == 0
        assert derived.server is None

    def test_explicit_structure(self):
        clock = SimulatedClock("2003-01-01T00:00:00")
        structure = TagStructure.build(
            {
                "name": "results",
                "type": "snapshot",
                "children": [{"name": "alert", "type": "event"}],
            }
        )
        channel = Channel()
        client = StreamClient(clock)
        client.tune_in(channel)
        derived = DerivedStream("out", channel, clock, tag_structure=structure)
        derived.publish_results([Element("alert", {"n": "1"})])
        assert client.engine.execute(
            'count(stream("out")//alert)', now=clock.now()
        ) == [1]
