"""Figure 4 (paper §7): Q1/Q2/Q5 under CaQ / QaC / QaC+.

One pytest-benchmark per (query, strategy) cell at the session scale, plus
a shape check: the paper's ordering QaC+ ≤ QaC < CaQ must hold.

Run:  pytest benchmarks/test_figure4.py --benchmark-only
For the full multi-scale table in the paper's layout:  repro-figure4
"""

from __future__ import annotations

import pytest

from repro.core import Strategy
from repro.xmark import PAPER_QUERIES

_CELLS = [
    (query_name, strategy)
    for query_name in ("Q1", "Q2", "Q5")
    for strategy in (Strategy.QAC_PLUS, Strategy.QAC, Strategy.CAQ)
]


@pytest.mark.parametrize(
    "query_name, strategy",
    _CELLS,
    ids=[f"{q}-{s.value}" for q, s in _CELLS],
)
def test_figure4_cell(benchmark, figure4_workload, query_name, strategy):
    query = PAPER_QUERIES[query_name]
    compiled = figure4_workload.engine.compile(query, strategy)

    def run():
        return figure4_workload.engine.execute(compiled)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)
    benchmark.extra_info["scale"] = figure4_workload.scale
    benchmark.extra_info["file_size"] = figure4_workload.file_size


def test_figure4_shape(benchmark, figure4_workload):
    """The paper's headline: QaC+ wins, CaQ loses, on every query."""
    import time

    def measure() -> dict:
        timings: dict[str, dict[str, float]] = {}
        for query_name, query in PAPER_QUERIES.items():
            row = {}
            for strategy in (Strategy.QAC_PLUS, Strategy.QAC, Strategy.CAQ):
                best = float("inf")
                for _ in range(2):  # best-of-2 smooths GC/alloc noise
                    started = time.perf_counter()
                    figure4_workload.run(query, strategy)
                    best = min(best, time.perf_counter() - started)
                row[strategy.value] = best
            timings[query_name] = row
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    for query_name, row in timings.items():
        assert row["CaQ"] > row["QaC"], f"{query_name}: CaQ should lose to QaC ({row})"
        assert row["CaQ"] > 1.5 * row["QaC+"], (
            f"{query_name}: CaQ should clearly lose to QaC+ ({row})"
        )
    # Aggregate-style queries show the strongest tsid advantage (paper:
    # widest gaps on the selective Q1/Q5).
    assert timings["Q5"]["QaC"] > timings["Q5"]["QaC+"]
