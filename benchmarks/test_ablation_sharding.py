"""Ablation A13: the sharded multi-process engine (PR 7).

The target regime is the PR 4 / PR 6 one pushed further: *many* standing
queries over a busy stream, where even shared scans and routed wakes
leave one process evaluating every woken residual serially.  PR 7
partitions the store and the evaluation by ``(stream, filler-id hash)``
across worker processes; each tick, every shard evaluates the full query
set over only its own sub-batch, so the per-tick critical path drops to
the slowest shard plus the coordinator's dispatch/merge overhead.

This ablation replays one dense-wake arrival sequence (64 threshold
queries whose thresholds mostly lie *below* the arriving amounts, so
routing cannot skip the work) against a single-process scheduler and a
4-shard :class:`~repro.streams.sharding.ShardedEngine` with real worker
processes.  Two timings are reported per tick:

- ``wall_s`` — observed wall clock.  On a box with >= 4 cores this is
  the headline; CI containers for this repo pin **one** core, where four
  workers time-slice and wall clock cannot beat solo.
- ``modeled_s`` — the critical path under the parallel assumption:
  coordinator post + merge overhead plus the *maximum* per-shard CPU
  time, as measured inside each worker (the ``cpu`` field of its poll
  reply; worker wall time is useless on an oversubscribed box because it
  counts time spent preempted by the sibling workers).  This is what the
  wall clock converges to once each worker owns a core; IPC transfer is
  assumed to overlap.

Acceptance at scale 0.01: modeled per-tick speedup >= 2x at 4 shards /
64 queries, with byte-identical answers; the wall-clock bar applies only
when the host actually has >= 4 usable cores.  Results are written to
``BENCH_sharding.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timedelta
from pathlib import Path
from statistics import median

import pytest

from repro import Strategy, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.fragments.model import Filler
from repro.streams.continuous import ContinuousQuery, item_identity
from repro.streams.scheduler import QueryScheduler
from repro.streams.sharding import ShardedEngine
from repro.temporal import XSDateTime

from .conftest import bench_scale

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_sharding.json"

_STRUCTURE_XML = """
<stream:structure>
  <tag type="snapshot" id="1" name="ledger">
    <tag type="event" id="2" name="txn">
      <tag type="snapshot" id="3" name="amount"/>
    </tag>
  </tag>
</stream:structure>
"""

_BASE = datetime(2000, 1, 1)

N_QUERIES = 64
N_SHARDS = 4
AMOUNT_RANGE = 128  # arriving amounts are in [0, AMOUNT_RANGE)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _query(threshold: int) -> str:
    return (
        f'for $t in stream("ledger")//txn where $t/amount > {threshold} '
        "return <flag>{$t/amount/text()}</flag>"
    )


def _stamp(minutes: float) -> XSDateTime:
    return XSDateTime.parse(
        (_BASE + timedelta(minutes=minutes)).strftime("%Y-%m-%dT%H:%M:%S")
    )


def _txn(filler_id: int, minutes: float, amount: int) -> Filler:
    content = parse_document(
        f'<txn seq="{filler_id}"><amount>{amount}</amount></txn>'
    ).document_element
    return Filler(filler_id, 2, _stamp(minutes), content)


class ShardedWorkload:
    """One event stream, 64 dense-wake threshold queries, many ticks.

    The A11 shared-eval workload inverted: thresholds sit *below* the
    arriving amount range, so nearly every query wakes on nearly every
    batch and the tick cost is genuine evaluation work — the part
    sharding parallelizes — rather than routing skips.
    """

    def __init__(self, scale: float, preload: int | None = None, ticks: int = 12,
                 queries: int = N_QUERIES, batch: int = 64):
        self.scale = scale
        self.preload = preload if preload is not None else max(80, int(8000 * scale))
        self.ticks = ticks
        self.batch = batch
        self.queries = queries
        self.now = _stamp(10_000_000)
        self.structure = TagStructure.from_xml(_STRUCTURE_XML)

    def sources(self) -> list[str]:
        # Dense wakes: thresholds cycle over the lower half of the
        # arriving range, so a typical batch concerns most queries.
        return [
            _query((i * 7) % (AMOUNT_RANGE // 2)) for i in range(self.queries)
        ]

    def preload_fillers(self) -> list[Filler]:
        return [
            _txn(i + 1, i, (i * 37) % AMOUNT_RANGE) for i in range(self.preload)
        ]

    def tick_fillers(self, tick: int) -> list[Filler]:
        base_id = self.preload + 1 + tick * self.batch
        base_minute = self.preload + 10 + tick * self.batch
        return [
            _txn(base_id + j, base_minute + j,
                 (tick * 31 + j * 17) % AMOUNT_RANGE)
            for j in range(self.batch)
        ]

    def solo_arm(self):
        engine = XCQLEngine(default_now=self.now)
        engine.register_stream("ledger", self.structure)
        scheduler = QueryScheduler(engine)
        queries = []
        for source in self.sources():
            query = ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS)
            scheduler.add(query)
            queries.append(query)
        engine.feed("ledger", self.preload_fillers())
        return engine, scheduler, queries

    def sharded_arm(self, shards: int = N_SHARDS, **kw):
        engine = ShardedEngine(shards, **kw)
        engine.register_stream("ledger", self.structure)
        queries = [
            engine.add_query(source, strategy=Strategy.QAC_PLUS)
            for source in self.sources()
        ]
        engine.feed("ledger", self.preload_fillers())
        return engine, queries


@pytest.fixture(scope="module")
def workload() -> ShardedWorkload:
    return ShardedWorkload(bench_scale())


def test_results_agree(workload):
    """Sharded answers are identity-identical to the solo scheduler's,
    per tick, including across a mid-run worker kill and journal-replay
    failover."""
    small = ShardedWorkload(workload.scale, preload=max(40, workload.preload // 4),
                            ticks=6, queries=16)
    solo_engine, solo_sched, solo_queries = small.solo_arm()
    engine, queries = small.sharded_arm(shards=3)
    try:
        solo_sched.poll(small.now)
        engine.tick(small.now)
        for tick in range(small.ticks):
            if tick == 3 and not engine._shards[0].in_process:
                engine._shards[0].process.kill()
                engine._shards[0].process.join()
            batch = small.tick_fillers(tick)
            solo_engine.feed("ledger", [
                Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                for f in batch
            ])
            engine.feed("ledger", batch)
            solo_emitted = solo_sched.poll(small.now)
            sharded_emitted = engine.tick(small.now)
            for solo_q, query in zip(solo_queries, queries):
                assert sorted(sharded_emitted[query]) == sorted(
                    item_identity(item) for item in solo_emitted[solo_q]
                ), query.source
        assert engine.stats()["coordinator"]["failovers"] == 1
    finally:
        engine.close()


def test_sharded_speedup(benchmark, workload):
    """The headline: >= 2x modeled per-tick speedup at 4 shards / 64
    queries at scale 0.01, byte-identical answers; the wall-clock bar is
    enforced only on hosts with >= 4 usable cores.

    Also writes ``BENCH_sharding.json`` at the repo root.
    """
    solo_engine, solo_sched, solo_queries = workload.solo_arm()
    engine, queries = workload.sharded_arm()
    try:
        def measure() -> dict:
            solo_sched.poll(workload.now)  # baseline: full runs
            engine.tick(workload.now)
            solo_times: list[float] = []
            wall_times: list[float] = []
            modeled_times: list[float] = []
            for tick in range(workload.ticks):
                batch = workload.tick_fillers(tick)
                solo_engine.feed("ledger", [
                    Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                    for f in batch
                ])
                engine.feed("ledger", batch)
                contenders = ["solo", "sharded"]
                if tick % 2:
                    contenders.reverse()
                for arm in contenders:
                    if arm == "solo":
                        started = time.perf_counter()
                        solo_emitted = solo_sched.poll(workload.now)
                        solo_times.append(time.perf_counter() - started)
                    else:
                        started = time.perf_counter()
                        sharded_emitted = engine.tick(workload.now)
                        wall_times.append(time.perf_counter() - started)
                        timing = engine.last_tick_timing
                        slowest = max(
                            timing["shard_cpu"].values(), default=0.0
                        )
                        modeled_times.append(
                            timing["post"] + timing["merge"] + slowest
                        )
                for solo_q, query in zip(solo_queries, queries):
                    assert sorted(sharded_emitted[query]) == sorted(
                        item_identity(item) for item in solo_emitted[solo_q]
                    ), query.source
            return {
                "solo": median(solo_times),
                "wall": median(wall_times),
                "modeled": median(modeled_times),
            }

        timings = benchmark.pedantic(measure, rounds=1, iterations=1)
        stats = engine.stats()
    finally:
        engine.close()

    cores = _cores()
    modeled_speedup = timings["solo"] / timings["modeled"]
    wall_speedup = timings["solo"] / timings["wall"]
    benchmark.extra_info["modeled_speedup"] = round(modeled_speedup, 2)
    benchmark.extra_info["wall_speedup"] = round(wall_speedup, 2)
    benchmark.extra_info["cores"] = cores
    coordinator = stats["coordinator"]
    report = {
        "ablation": "A13",
        "scale": workload.scale,
        "cores": cores,
        "shards": N_SHARDS,
        "standing_queries": workload.queries,
        "preloaded_fillers": workload.preload,
        "ticks": workload.ticks,
        "arrivals_per_tick": workload.batch,
        "per_tick": {
            "solo_s": timings["solo"],
            "sharded_wall_s": timings["wall"],
            "sharded_modeled_s": timings["modeled"],
            "modeled_speedup": round(modeled_speedup, 2),
            "wall_speedup": round(wall_speedup, 2),
        },
        "coordinator": {
            "dispatch_probes": coordinator["dispatch_probes"],
            "dispatch_wakes": coordinator["dispatch_wakes"],
            "dispatch_skips": coordinator["dispatch_skips"],
            "shard_polls": coordinator["shard_polls"],
            "shard_poll_skips": coordinator["shard_poll_skips"],
            "failovers": coordinator["failovers"],
        },
    }
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    assert timings["modeled"] < timings["solo"], (
        f"sharding slower even on the critical path ({timings})"
    )
    if bench_scale() >= 0.01:
        # Tiny smoke scales are dominated by fixed per-poll costs.
        assert modeled_speedup >= 2.0, (
            f"only {modeled_speedup:.2f}x modeled per tick ({timings})"
        )
    if cores >= N_SHARDS:
        assert wall_speedup >= 1.2, (
            f"only {wall_speedup:.2f}x wall clock on {cores} cores ({timings})"
        )
