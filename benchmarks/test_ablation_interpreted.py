"""Ablation A7: native vs. interpreted library functions.

The paper's absolute Figure 4 numbers come from ``get_fillers`` and
``temporalize`` being *interpreted XQuery* re-evaluated by Qizx per call.
Our engine implements them natively; `repro.core.reference` ships the
paper's definitions runnable through our interpreter.  This ablation
quantifies the interpretation tax on the CaQ pipeline — explaining why our
measured Figure 4 magnitudes are smaller than the paper's even at equal
document sizes (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro import Fragmenter, FragmentStore, XCQLEngine
from repro.core import Strategy
from repro.core.reference import attach_reference_functions
from repro.temporal import XSDateTime
from repro.xmark import AUCTION_STREAM, auction_tag_structure, generate_auction_document

NOW = XSDateTime.parse("2003-06-01T00:00:00")

NATIVE_CAQ = (
    'count(for $i in stream("auction")/site/closed_auctions/closed_auction '
    "where $i/price/text() >= 40 return $i/price)"
)
INTERPRETED_CAQ = (
    "count(for $i in ref_temporalize(ref_get_fillers(0))"
    "/site/closed_auctions/closed_auction "
    "where $i/price/text() >= 40 return $i/price)"
)


@pytest.fixture(scope="module")
def reference_engine():
    structure = auction_tag_structure()
    engine = XCQLEngine(default_now=NOW)
    store = FragmentStore(structure, use_index=False, use_cache=False)
    engine.register_stream(AUCTION_STREAM, structure, store)
    fillers = Fragmenter(structure).fragment(
        generate_auction_document(0.0), XSDateTime(2003, 1, 1)
    )
    engine.feed(AUCTION_STREAM, fillers)
    attach_reference_functions(engine, AUCTION_STREAM)
    return engine


def test_results_agree(reference_engine):
    native = reference_engine.execute(NATIVE_CAQ, strategy=Strategy.CAQ, now=NOW)
    interpreted = reference_engine.execute(INTERPRETED_CAQ, now=NOW)
    assert native == interpreted


@pytest.mark.parametrize("variant", ["native-CaQ", "interpreted-CaQ"])
def test_caq_pipeline_cost(benchmark, reference_engine, variant):
    if variant == "native-CaQ":
        compiled = reference_engine.compile(NATIVE_CAQ, Strategy.CAQ)
    else:
        compiled = reference_engine.compile(INTERPRETED_CAQ, Strategy.QAC)

    def run():
        return reference_engine.execute(compiled, now=NOW)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result"] = result


def test_interpretation_tax(benchmark, reference_engine):
    import time

    def measure():
        timings = {}
        for label, (query, strategy) in (
            ("native", (NATIVE_CAQ, Strategy.CAQ)),
            ("interpreted", (INTERPRETED_CAQ, Strategy.QAC)),
        ):
            compiled = reference_engine.compile(query, strategy)
            best = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                reference_engine.execute(compiled, now=NOW)
                best = min(best, time.perf_counter() - started)
            timings[label] = best
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["tax"] = round(timings["interpreted"] / timings["native"], 1)
    assert timings["interpreted"] > timings["native"]
