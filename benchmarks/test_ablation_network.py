"""Ablation A14: the framed network transport (PR 8).

The in-process channels deliver one Python callback per envelope; a real
deployment delivers over sockets, where the naive shape — one wire frame
per envelope per subscriber — pays the frame encode, queue hop, write,
and drain once *per message per connection*.  The network transport
amortizes all of that: envelopes coalesce into size/latency-bounded
BATCH frames per connection, and batches past a threshold travel
tag-compressed.

This ablation stands up a real asyncio :class:`~repro.streams.net.StreamServer`
with N subscriber connections on localhost and publishes a burst of
filler envelopes through two configurations of the *same* code path:

- ``naive`` — ``max_batch_bytes=1`` (every envelope flushes its own
  frame) and compression off: the one-message-per-envelope baseline;
- ``batched`` — the shipped defaults: 64 KiB / few-ms adaptive batches
  (compression stays armed at its default threshold);
- ``compressed`` — batching plus a low compression threshold, so every
  batch travels tag-compressed: reported for the bytes-on-wire
  reduction and its CPU cost, which in this one-process harness is paid
  by all N clients on a single core (real subscribers decompress on
  their own machines).

Reported per subscriber tier (100 / 1000, plus 5000 when the scale
affords it): wall time to full delivery, delivered messages/second,
frames on the wire, and the p50/p99 per-envelope delivery latency
observed by a designated client.  Two side checks record the acceptance
properties that are not throughput: a deliberately slow consumer holds
the bounded queue (drop counters, never unbounded memory), and a
killed-then-reconnected client is byte-identical to an always-connected
one after journal catch-up.

Acceptance at scale 0.01: >= 3x delivery throughput vs. naive at the
1000-subscriber tier.  Results land in ``BENCH_network.json``.  This
box pins few cores — the win is fewer frames and syscalls per delivered
envelope, not parallelism, so the speedup holds on one core.
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import time
from pathlib import Path
from statistics import median

import pytest

from repro.fragments.persist import Journal
from repro.streams.net import DROP, StreamClient, StreamServer, Subscription
from repro.streams.transport import FILLER, TAG_STRUCTURE, Message

from .conftest import bench_scale

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_network.json"

_STRUCTURE_XML = (
    '<stream:structure><tag type="snapshot" id="1" name="ledger">'
    '<tag type="event" id="2" name="txn">'
    '<tag type="snapshot" id="3" name="amount"/>'
    '<tag type="snapshot" id="4" name="vendor"/>'
    "</tag></tag></stream:structure>"
)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _envelope(i: int) -> str:
    day = (i % 27) + 1
    return (
        f'<filler id="{i + 1}" tsid="2" validTime="2004-01-{day:02d}">'
        f'<txn seq="{i}"><amount>{(i * 37) % 1000}</amount>'
        f"<vendor>vendor-{i % 17}</vendor></txn></filler>"
    )


def _tiers(scale: float) -> list[int]:
    tiers = [100, 1000]
    if scale >= 0.05 or os.environ.get("REPRO_BENCH_NET_MAX"):
        tiers.append(5000)
    return tiers


class NetworkWorkload:
    def __init__(self, scale: float):
        self.scale = scale
        self.envelopes = [
            _envelope(i) for i in range(max(40, int(20_000 * scale)))
        ]

    ARMS = {
        "naive": dict(
            max_batch_bytes=1, max_delay_ms=0.0, compress_threshold=None
        ),
        "batched": dict(),  # the shipped defaults
        "compressed": dict(compress_threshold=4 * 1024),
    }

    async def run_tier(self, subscribers: int, arm: str) -> dict:
        """Publish the burst to ``subscribers`` connections; time delivery.

        The server is identical across arms except for the batching and
        compression bounds, so the measured difference is pure
        wire-shape: frames and bytes per delivered envelope, not
        evaluation work.
        """
        server = StreamServer(queue_frames=256, **self.ARMS[arm])
        await server.start()
        total = {"received": 0}
        expected = len(self.envelopes) * subscribers
        done = asyncio.Event()

        def count(_message: Message) -> None:
            total["received"] += 1
            if total["received"] >= expected:
                done.set()

        loop = asyncio.get_running_loop()
        arrivals: dict[int, float] = {}
        observer_last = {"seq": 0}

        def observe(_message: Message) -> None:
            observer_last["seq"] += 1
            arrivals[observer_last["seq"]] = loop.time()
            count(_message)

        clients = [
            StreamClient(
                "127.0.0.1",
                server.port,
                on_message=observe if index == 0 else count,
            )
            for index in range(subscribers)
        ]
        # Connect in slabs so the simultaneous SYNs stay under the
        # listen backlog; 1000 sequential round-trips would dominate.
        for start in range(0, subscribers, 50):
            await asyncio.gather(
                *(c.connect() for c in clients[start : start + 50])
            )
        subs = [Subscription("ledger")]
        await asyncio.gather(*(c.subscribe(subs) for c in clients))
        await server.publish(Message(TAG_STRUCTURE, "ledger", _STRUCTURE_XML))
        while total["received"] < subscribers:  # every schema delivered
            await asyncio.sleep(0.005)
        base_received = total["received"]
        expected += base_received
        obs_base = observer_last["seq"]
        publish_times: dict[int, float] = {}

        gc.collect()  # keep collector pauses out of the timed burst
        started = time.perf_counter()
        for i, payload in enumerate(self.envelopes):
            publish_times[i + 1] = loop.time()
            await server.publish(Message(FILLER, "ledger", payload))
        await asyncio.wait_for(done.wait(), timeout=600)
        wall = time.perf_counter() - started

        latencies = sorted(
            arrivals[seq + obs_base] - publish_times[seq]
            for seq in publish_times
            if seq + obs_base in arrivals
        )
        frames = sum(c._decoder.frames_decoded for c in clients)
        wire_bytes = sum(c._decoder.bytes_decoded for c in clients)
        compressed = sum(c.compressed_batches for c in clients)
        sample = clients[0]
        payload_ok = sample.received == len(self.envelopes) + 1
        for start in range(0, subscribers, 100):
            await asyncio.gather(
                *(c.close() for c in clients[start : start + 100])
            )
        await server.close()
        delivered = expected - base_received
        return {
            "wall_s": round(wall, 4),
            "throughput_msg_s": round(delivered / wall, 1),
            "frames": frames,
            "frames_per_envelope": round(frames / delivered, 4),
            "wire_bytes": wire_bytes,
            "wire_bytes_per_envelope": round(wire_bytes / delivered, 1),
            "compressed_batches": compressed,
            "p50_latency_ms": round(
                1000 * median(latencies), 3
            ) if latencies else None,
            "p99_latency_ms": round(
                1000 * latencies[int(len(latencies) * 0.99) - 1], 3
            ) if latencies else None,
            "complete": payload_ok,
        }


@pytest.fixture(scope="module")
def workload() -> NetworkWorkload:
    return NetworkWorkload(bench_scale())


def test_slow_consumer_memory_is_bounded(workload):
    """A subscriber that stops reading costs a bounded queue, not RAM."""

    async def scenario() -> dict:
        server = StreamServer(
            slow_policy=DROP,
            queue_frames=8,
            max_batch_bytes=1024,
            max_delay_ms=1.0,
        )
        await server.start()
        from repro.streams import netproto as proto

        _reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(proto.encode_control(proto.HELLO, versions=[1]))
        writer.write(
            proto.encode_control(
                proto.SUBSCRIBE,
                subscriptions=[{"stream": "ledger"}],
                catchup=False,
            )
        )
        await writer.drain()
        while not (server._conns and server._conns[0].subscriptions):
            await asyncio.sleep(0.01)
        for payload in workload.envelopes * 4:
            await server.publish(Message(FILLER, "ledger", payload))
        stats = server.stats()
        writer.close()
        await server.close()
        return stats

    stats = asyncio.run(scenario())
    assert stats["dropped_frames"] > 0
    assert stats["queued_frames"] <= 8
    _merge_report(
        slow_consumer={
            "published": stats["published"],
            "dropped_frames": stats["dropped_frames"],
            "queued_frames": stats["queued_frames"],
            "queue_bound_frames": 8,
        }
    )


def test_catchup_byte_identity(workload, tmp_path):
    """Killed + reconnected == always-connected, byte for byte."""

    async def scenario() -> dict:
        journal = Journal(os.path.join(tmp_path, "a14.journal"))
        server = StreamServer(journal=journal, max_delay_ms=2.0)
        await server.start()
        steady_got, flaky_got = [], []
        steady = StreamClient(
            "127.0.0.1", server.port, on_message=steady_got.append
        )
        await steady.connect()
        await steady.subscribe([Subscription("ledger")])
        flaky = StreamClient(
            "127.0.0.1", server.port, on_message=flaky_got.append
        )
        await flaky.connect()
        await flaky.subscribe([Subscription("ledger")])

        await server.publish(Message(TAG_STRUCTURE, "ledger", _STRUCTURE_XML))
        half = len(workload.envelopes) // 2
        for payload in workload.envelopes[:half]:
            await server.publish(Message(FILLER, "ledger", payload))
        while flaky.received < half + 1:
            await asyncio.sleep(0.01)
        flaky._writer.close()  # die mid-stream, no goodbye
        await flaky.closed.wait()
        for payload in workload.envelopes[half:]:
            await server.publish(Message(FILLER, "ledger", payload))
        while steady.received < len(workload.envelopes) + 1:
            await asyncio.sleep(0.01)

        revived = StreamClient(
            "127.0.0.1", server.port, on_message=flaky_got.append
        )
        await revived.connect()
        await revived.subscribe([Subscription("ledger")], catchup=True)
        ack = await revived.catchup(after=flaky.last_seen)
        while len(flaky_got) < len(steady_got):
            await asyncio.sleep(0.01)
        identical = [(m.kind, m.payload) for m in flaky_got] == [
            (m.kind, m.payload) for m in steady_got
        ]
        await steady.close()
        await revived.close()
        await server.close()
        return {"replayed": ack["replayed"], "byte_identical": identical}

    outcome = asyncio.run(scenario())
    assert outcome["byte_identical"]
    assert outcome["replayed"] > 0
    _merge_report(catchup=outcome)


def test_network_throughput(benchmark, workload):
    """The headline: batched delivery >= 3x naive at 1000 subscribers.

    Also writes the subscriber-scaling table to ``BENCH_network.json``.
    """
    tiers = _tiers(workload.scale)

    def measure() -> dict:
        results: dict[int, dict] = {}
        for subscribers in tiers:
            row: dict = {"subscribers": subscribers}
            for arm in NetworkWorkload.ARMS:
                # Best-of-2 for the throughput arms: a single run on a
                # shared box is at the mercy of scheduler noise.  The
                # compressed arm is reported for bytes, not the headline.
                repeats = 1 if arm == "compressed" else 2
                runs = [
                    asyncio.run(workload.run_tier(subscribers, arm))
                    for _ in range(repeats)
                ]
                row[arm] = max(runs, key=lambda r: r["throughput_msg_s"])
            row["speedup"] = round(
                row["batched"]["throughput_msg_s"]
                / row["naive"]["throughput_msg_s"],
                2,
            )
            row["compression_ratio"] = round(
                row["compressed"]["wire_bytes"] / row["batched"]["wire_bytes"],
                3,
            )
            results[subscribers] = row
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for tier in results.values():
        for arm in NetworkWorkload.ARMS:
            assert tier[arm]["complete"], f"{arm} lost envelopes"
        # The whole point: far fewer frames, and compression strictly
        # shrinks what crosses the wire.
        assert (
            tier["batched"]["frames_per_envelope"]
            < tier["naive"]["frames_per_envelope"] / 3
        )
        assert tier["compressed"]["wire_bytes"] < tier["batched"]["wire_bytes"]
    headline = results.get(1000) or results[max(results)]
    benchmark.extra_info["speedup_1000_subs"] = headline["speedup"]
    _merge_report(
        scale=workload.scale,
        cores=_cores(),
        envelopes_per_run=len(workload.envelopes),
        tiers=[results[key] for key in sorted(results)],
    )
    if bench_scale() >= 0.01:
        # Tiny smoke scales are dominated by fixed per-connection costs.
        assert headline["speedup"] >= 3.0, (
            f"only {headline['speedup']:.2f}x at "
            f"{headline['subscribers']} subscribers"
        )


def _merge_report(**fields) -> None:
    """Accumulate the A14 report across the suite's tests."""
    report = {"ablation": "A14"}
    if _JSON_PATH.exists():
        try:
            report = json.loads(_JSON_PATH.read_text(encoding="utf-8"))
        except ValueError:
            pass
    report["ablation"] = "A14"
    report.update(fields)
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
