"""Ablation A5: tag-name compression (paper §4.1).

Measures the wire-size reduction and the encode/decode cost of shipping
filler payloads with Tag-Structure-derived tag codes, on the XMark auction
stream.
"""

from __future__ import annotations

import pytest

from repro import Fragmenter
from repro.streams.compression import TagCodec
from repro.temporal import XSDateTime
from repro.xmark import auction_tag_structure, generate_auction_document


@pytest.fixture(scope="module")
def auction_fillers():
    structure = auction_tag_structure()
    document = generate_auction_document(0.005)
    return structure, Fragmenter(structure).fragment(
        document, XSDateTime(2003, 1, 1)
    )


def test_encode_cost(benchmark, auction_fillers):
    structure, fillers = auction_fillers
    codec = TagCodec(structure)
    payloads = [filler.to_xml() for filler in fillers]

    def encode_all():
        return [codec.encode_wire(p) for p in payloads]

    encoded = benchmark.pedantic(encode_all, rounds=3, iterations=1, warmup_rounds=1)
    raw = sum(len(p.encode()) for p in payloads)
    packed = sum(len(p.encode()) for p in encoded)
    benchmark.extra_info["raw_bytes"] = raw
    benchmark.extra_info["packed_bytes"] = packed
    benchmark.extra_info["savings_pct"] = round(100 * (1 - packed / raw), 1)
    assert packed < raw


def test_decode_cost(benchmark, auction_fillers):
    structure, fillers = auction_fillers
    codec = TagCodec(structure)
    encoded = [codec.encode_wire(filler.to_xml()) for filler in fillers]

    def decode_all():
        return [codec.decode_wire(p) for p in encoded]

    decoded = benchmark.pedantic(decode_all, rounds=3, iterations=1, warmup_rounds=1)
    assert decoded[0] == fillers[0].to_xml()


def test_round_trip_lossless(benchmark, auction_fillers):
    structure, fillers = auction_fillers
    codec = TagCodec(structure)

    def round_trip():
        mismatches = 0
        for filler in fillers:
            payload = filler.to_xml()
            if codec.decode_wire(codec.encode_wire(payload)) != payload:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    assert mismatches == 0
