"""Benchmarks for the paper's §3.1 credit-card queries (qualitative).

The paper gives no numbers for Query 1/Query 2; these benches record their
cost on a synthetic credit stream under each strategy so regressions in
the temporal-projection path are visible.
"""

from __future__ import annotations

import random

import pytest

from repro import Fragmenter, FragmentStore, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.temporal import XSDateTime

from tests.conftest import CREDIT_TAG_STRUCTURE_XML
from repro.core import Strategy

NOW = XSDateTime.parse("2003-12-01T00:00:00")

QUERY_1 = """
for $a in stream("credit")//account
where sum($a/transaction?[2003-11-01,2003-12-01][status = "charged"]/amount) >=
      $a/creditLimit?[now]
return <account id="{$a/@id}"/>
"""

QUERY_2 = """
for $a in stream("credit")//account
where sum($a/transaction?[now-PT1H,now][status = "charged"]/amount) >=
      max($a/creditLimit?[now] * 0.9, 5000)
return <alert id="{$a/@id}"/>
"""


def synth_credit_document(accounts: int, transactions: int, seed: int = 11):
    rng = random.Random(seed)
    parts = ["<creditAccounts>"]
    for a in range(accounts):
        parts.append(f'<account id="{a}"><customer>Customer {a}</customer>')
        parts.append(f"<creditLimit>{rng.choice((500, 1000, 5000))}</creditLimit>")
        for t in range(transactions):
            month = rng.randint(9, 11)
            day = rng.randint(1, 28)
            stamp = f"2003-{month:02d}-{day:02d}T12:00:00"
            parts.append(
                f'<transaction id="{a}-{t}" vtFrom="{stamp}" vtTo="{stamp}">'
                f"<vendor>V{t}</vendor><amount>{rng.randint(10, 900)}</amount>"
                f'<status vtFrom="{stamp}" vtTo="now">charged</status>'
                "</transaction>"
            )
        parts.append("</account>")
    parts.append("</creditAccounts>")
    return parse_document("".join(parts))


@pytest.fixture(scope="module")
def credit_workload():
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    engine = XCQLEngine(default_now=NOW)
    store = FragmentStore(structure)
    engine.register_stream("credit", structure, store)
    document = synth_credit_document(accounts=30, transactions=8)
    engine.feed(
        "credit",
        Fragmenter(structure).fragment_temporal_view(document, XSDateTime(2003, 1, 1)),
    )
    return engine


_CASES = [
    (name, strategy)
    for name in ("query1", "query2")
    for strategy in (Strategy.QAC_PLUS, Strategy.QAC, Strategy.CAQ)
]


@pytest.mark.parametrize(
    "name, strategy", _CASES, ids=[f"{n}-{s.value}" for n, s in _CASES]
)
def test_credit_query(benchmark, credit_workload, name, strategy):
    query = QUERY_1 if name == "query1" else QUERY_2
    compiled = credit_workload.compile(query, strategy)

    def run():
        return credit_workload.execute(compiled, now=NOW)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)
