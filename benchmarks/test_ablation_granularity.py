"""Ablation A1: fragmentation granularity vs. update cost and query time.

Paper §1: "It is essential ... that a server does a reasonable
fragmentation of data to accommodate future updates with minimal
overhead."  We fragment the same credit-card data three ways —

- *coarse*: only ``account`` fragments (one update retransmits the whole
  account subtree),
- *paper*: the §4.1 layout (account / creditLimit / transaction / status),
- *unfragmented*: nothing fragments (an update retransmits the document) —

and measure (a) bytes on the wire to apply one status update and (b) the
run time of the paper's Query 1.
"""

from __future__ import annotations

import pytest

from repro import Fragmenter, FragmentStore, TagStructure, XCQLEngine
from repro.dom import Element, parse_document, serialize
from repro.temporal import XSDateTime

NOW = XSDateTime.parse("2003-12-15T00:00:00")

_PAPER = {
    "account": "temporal",
    "creditLimit": "temporal",
    "transaction": "event",
    "status": "temporal",
}
_COARSE = {"account": "temporal"}
_UNFRAGMENTED: dict[str, str] = {"account": "snapshot"}

_SPEC = {
    "name": "creditAccounts",
    "children": [
        {
            "name": "account",
            "children": [
                {"name": "customer"},
                {"name": "creditLimit"},
                {
                    "name": "transaction",
                    "children": [
                        {"name": "vendor"},
                        {"name": "status"},
                        {"name": "amount"},
                    ],
                },
            ],
        }
    ],
}

QUERY = """
for $a in stream("credit")//account
where sum($a/transaction?[2003-01-01,now][status = "charged"]/amount) >= 500
return $a/@id
"""


def structure_with(roles: dict[str, str]) -> TagStructure:
    def apply(spec: dict) -> dict:
        out = {
            "name": spec["name"],
            "type": roles.get(spec["name"], "snapshot"),
            "children": [apply(c) for c in spec.get("children", ())],
        }
        return out

    return TagStructure.build(apply(_SPEC))


def build_document(accounts: int = 40, transactions: int = 5):
    parts = ["<creditAccounts>"]
    for a in range(accounts):
        parts.append(f'<account id="{a}"><customer>C{a}</customer>')
        parts.append("<creditLimit>1000</creditLimit>")
        for t in range(transactions):
            parts.append(
                f'<transaction id="{a}-{t}"><vendor>V</vendor>'
                f"<amount>{50 + t}</amount><status>charged</status></transaction>"
            )
        parts.append("</account>")
    parts.append("</creditAccounts>")
    return parse_document("".join(parts))


def build_engine(roles: dict[str, str]):
    structure = structure_with(roles)
    engine = XCQLEngine(default_now=NOW)
    store = FragmentStore(structure)
    engine.register_stream("credit", structure, store)
    fragmenter = Fragmenter(structure)
    engine.feed(
        "credit", fragmenter.fragment(build_document(), XSDateTime(2003, 1, 1))
    )
    return engine, store, fragmenter


_GRANULARITIES = {
    "paper-layout": _PAPER,
    "coarse-account": _COARSE,
    "unfragmented": _UNFRAGMENTED,
}


@pytest.mark.parametrize("granularity", sorted(_GRANULARITIES))
def test_query_time_by_granularity(benchmark, granularity):
    engine, _store, _fragmenter = build_engine(_GRANULARITIES[granularity])
    compiled = engine.compile(QUERY)

    def run():
        return engine.execute(compiled)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)


def test_update_cost_by_granularity(benchmark):
    """Finer fragments make updates dramatically cheaper on the wire."""

    def measure() -> dict[str, int]:
        costs: dict[str, int] = {}
        for label, roles in _GRANULARITIES.items():
            engine, store, fragmenter = build_engine(roles)
            before = store.wire_size
            # Apply one logical update: account 0's first status flips.
            if label == "paper-layout":
                account_hole = fragmenter.hole_registry[(0, "account", "0")]
                txn_hole = fragmenter.hole_registry[(account_hole, "transaction", "0-0")]
                status_id = fragmenter.hole_registry[(txn_hole, "status", "0-0")]
                status_tsid = store.tag_structure.resolve_path(
                    ["creditAccounts", "account", "transaction", "status"]
                ).tsid
                new_status = Element("status")
                new_status.add_text("suspended")
                from repro.fragments.model import Filler

                store.append(Filler(status_id, status_tsid, NOW, new_status))
            elif label == "coarse-account":
                account_id = fragmenter.hole_registry[(0, "account", "0")]
                account = store.versions_of(account_id)[0].copy()
                del account.attrs["vtFrom"], account.attrs["vtTo"]
                status = account.first("transaction").first("status")
                status.children[0].text = "suspended"
                from repro.fragments.model import Filler

                store.append(
                    Filler(
                        account_id,
                        store.tag_structure.resolve_path(["creditAccounts", "account"]).tsid,
                        NOW,
                        account,
                    )
                )
            else:  # unfragmented: retransmit the whole document as filler 0
                root = store.versions_of(0)[0].copy()
                status = root.first("account").first("transaction").first("status")
                status.children[0].text = "suspended"
                from repro.fragments.model import Filler

                store.append(Filler(0, 1, NOW, root))
            costs[label] = store.wire_size - before
        return costs

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["update_bytes"] = costs
    # The paper's granularity argument: finer fragmentation -> cheaper updates.
    assert costs["paper-layout"] < costs["coarse-account"] < costs["unfragmented"]
