"""Ablation A10: incremental (delta) vs. full continuous-query evaluation.

After PR 1/PR 2 a non-skipped poll tick still re-ran the whole compiled
plan over the whole FragmentStore, even when a single filler arrived.
PR 3 adds store watermarks plus a delta driver: delta-safe standing
queries evaluate only the fillers past their watermark and append to the
retained result, so the per-tick cost tracks the arrival batch instead of
the store size.

This ablation replays the same arrival sequence against two identical
engines — one standing query incremental, one full-scan — and measures
the per-tick evaluation latency of each after a warm baseline.  The
acceptance bar: >= 3x per tick at scale 0.01 (the gap widens with store
size; the delta path is O(batch), the full path O(history)).

Results are written to ``BENCH_incremental.json`` at the repo root so the
perf trajectory stays machine-readable across PRs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timedelta
from pathlib import Path
from statistics import median

import pytest

from repro import Strategy, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.dom.serializer import serialize
from repro.fragments.model import Filler
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import QueryScheduler
from repro.temporal import XSDateTime

from .conftest import bench_scale

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_incremental.json"

_STRUCTURE = TagStructure.from_xml(
    """
    <stream:structure>
      <tag type="snapshot" id="1" name="ledger">
        <tag type="event" id="2" name="txn">
          <tag type="snapshot" id="3" name="amount"/>
        </tag>
      </tag>
    </stream:structure>
    """
)

_BASE = datetime(2000, 1, 1)

QUERY = (
    'for $t in stream("ledger")//txn where $t/amount > 50 '
    "return <flag>{$t/amount/text()}</flag>"
)


def _stamp(minutes: float) -> XSDateTime:
    return XSDateTime.parse(
        (_BASE + timedelta(minutes=minutes)).strftime("%Y-%m-%dT%H:%M:%S")
    )


def _txn(filler_id: int, minutes: float, amount: int) -> Filler:
    content = parse_document(
        f'<txn seq="{filler_id}"><amount>{amount}</amount></txn>'
    ).document_element
    return Filler(filler_id, 2, _stamp(minutes), content)


class IncrementalWorkload:
    """One event stream, one delta-safe standing query, many small ticks."""

    def __init__(self, scale: float, preload: int | None = None, ticks: int = 40):
        self.scale = scale
        self.preload = preload if preload is not None else max(200, int(20000 * scale))
        self.ticks = ticks
        self.batch = 2
        self.now = _stamp(10_000_000)

    def preload_fillers(self) -> list[Filler]:
        return [
            _txn(i + 1, i, 40 + (i % 100)) for i in range(self.preload)
        ]

    def tick_fillers(self, tick: int) -> list[Filler]:
        base_id = self.preload + 1 + tick * self.batch
        base_minute = self.preload + 10 + tick * self.batch
        return [
            _txn(base_id + j, base_minute + j, 45 + ((tick + j) % 20))
            for j in range(self.batch)
        ]

    def engine(self) -> XCQLEngine:
        engine = XCQLEngine(default_now=self.now)
        engine.register_stream("ledger", _STRUCTURE)
        engine.feed("ledger", self.preload_fillers())
        return engine

    def standing_query(self, engine: XCQLEngine, incremental: bool,
                       backend: str | None = None) -> ContinuousQuery:
        return ContinuousQuery(
            engine,
            QUERY,
            strategy=Strategy.QAC_PLUS,
            incremental=incremental,
            backend=backend,
        )


@pytest.fixture(scope="module")
def workload() -> IncrementalWorkload:
    return IncrementalWorkload(bench_scale())


def test_results_agree(workload):
    """Delta, full-compiled and interpreted answers are byte-identical.

    In-order fresh-id arrivals keep even the list order identical, so the
    check is exact, not just multiset equality.
    """
    small = IncrementalWorkload(workload.scale, preload=max(40, workload.preload // 8),
                                ticks=10)
    engines = [small.engine(), small.engine(), small.engine()]
    incremental = small.standing_query(engines[0], incremental=True)
    full = small.standing_query(engines[1], incremental=False)
    interpreted = small.standing_query(engines[2], incremental=False,
                                       backend="interpreted")
    for tick in range(small.ticks):
        batch = small.tick_fillers(tick)
        for engine in engines:
            engine.feed("ledger", [
                Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                for f in batch
            ])
        incremental.evaluate(small.now)
        full.evaluate(small.now)
    interpreted.evaluate(small.now)
    reference = [serialize(i) for i in interpreted.last_result]
    assert [serialize(i) for i in incremental.last_result] == reference
    assert [serialize(i) for i in full.last_result] == reference
    assert reference  # never vacuous
    assert incremental.delta_runs == small.ticks - 1
    assert incremental.full_runs == 1


def test_delta_path_engages_under_scheduler(workload):
    small = IncrementalWorkload(workload.scale, preload=40, ticks=4)
    engine = small.engine()
    # Routing off: this ablation pins the *solo* delta path; with the
    # PR-4 routing index the early non-matching ticks would be skipped
    # outright (measured by A11) instead of exercising delta runs.
    scheduler = QueryScheduler(engine, routing=False)
    query = small.standing_query(engine, incremental=True)
    scheduler.add(query)
    scheduler.poll(small.now)  # baseline: full
    for tick in range(small.ticks):
        engine.feed("ledger", small.tick_fillers(tick))
        scheduler.poll(small.now)
    scheduler.poll(small.now)  # no arrivals: skip
    stats = scheduler.stats()
    assert stats["full_runs"] == 1
    assert stats["delta_runs"] == small.ticks
    assert stats["skips"] == 1
    assert engine.prepare_delta(query.compiled) is not None


def test_incremental_speedup(benchmark, workload):
    """The headline: >= 3x per-tick latency, full vs. delta, at scale 0.01.

    Also writes ``BENCH_incremental.json`` at the repo root.
    """
    engine_delta = workload.engine()
    engine_full = workload.engine()
    incremental = workload.standing_query(engine_delta, incremental=True)
    full = workload.standing_query(engine_full, incremental=False)

    def measure() -> dict:
        # Baseline evaluation (both full) before any timed tick.
        incremental.evaluate(workload.now)
        full.evaluate(workload.now)
        delta_times: list[float] = []
        full_times: list[float] = []
        for tick in range(workload.ticks):
            batch = workload.tick_fillers(tick)
            engine_delta.feed("ledger", [
                Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                for f in batch
            ])
            engine_full.feed("ledger", batch)
            # Alternate who goes first so drift hits both equally.
            contenders = [
                (incremental, delta_times), (full, full_times)
            ]
            if tick % 2:
                contenders.reverse()
            for query, times in contenders:
                started = time.perf_counter()
                query.evaluate(workload.now)
                times.append(time.perf_counter() - started)
        return {"delta": median(delta_times), "full": median(full_times)}

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert incremental.delta_runs == workload.ticks
    assert incremental.full_runs == 1
    reference = sorted(serialize(i) for i in full.last_result)
    assert sorted(serialize(i) for i in incremental.last_result) == reference

    speedup = timings["full"] / timings["delta"]
    benchmark.extra_info["per_tick_speedup"] = round(speedup, 2)
    report = {
        "ablation": "A10",
        "scale": workload.scale,
        "preloaded_fillers": workload.preload,
        "ticks": workload.ticks,
        "arrivals_per_tick": workload.batch,
        "per_tick": {
            "full_s": timings["full"],
            "delta_s": timings["delta"],
            "speedup": round(speedup, 2),
        },
    }
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    assert timings["delta"] < timings["full"], f"delta slower than full ({timings})"
    if bench_scale() >= 0.01:
        # The bar holds once store size dominates; tiny smoke scales are
        # dominated by fixed per-evaluation costs.
        assert speedup >= 3.0, f"only {speedup:.2f}x per tick ({timings})"
