"""Shared benchmark fixtures.

Scales are small by default (a pure-Python interpreter is ~two orders of
magnitude slower than the paper's Qizx/Java setup); override with
``REPRO_BENCH_SCALE`` for bigger runs.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.figure4 import Figure4Workload


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))


@pytest.fixture(scope="session")
def figure4_workload() -> Figure4Workload:
    """One paper-faithful (unindexed, uncached) fragmented auction stream."""
    return Figure4Workload.build(bench_scale())


@pytest.fixture(scope="session")
def engineered_workload() -> Figure4Workload:
    """The same stream with the engineered (indexed + memoized) store."""
    return Figure4Workload.build(bench_scale(), paper_faithful=False)
