"""Ablation A2: get_fillers as scan vs. as indexed lookup.

The paper implements ``get_fillers`` as an interpreted XQuery function that
re-scans the fragments document on every call, and its §8 future work
proposes treating it as a join so "various join optimizations may be
employed".  Our FragmentStore's id/tsid hash indexes and version memo are
exactly that optimization; this ablation quantifies it on the QaC method
(which calls get_fillers once per hole on the query path).
"""

from __future__ import annotations

import pytest

from repro.core import Strategy
from repro.xmark import PAPER_QUERIES

_VARIANTS = ["paper-scan", "indexed"]


@pytest.mark.parametrize("variant", _VARIANTS)
@pytest.mark.parametrize("query_name", ["Q1", "Q5"])
def test_getfillers_variants(
    benchmark, figure4_workload, engineered_workload, variant, query_name
):
    workload = figure4_workload if variant == "paper-scan" else engineered_workload
    compiled = workload.engine.compile(PAPER_QUERIES[query_name], Strategy.QAC)

    def run():
        return workload.engine.execute(compiled)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)


def test_index_speeds_up_qac(benchmark, figure4_workload, engineered_workload):
    """The engineered store must beat the paper-faithful scan on QaC."""
    import time

    def measure():
        out = {}
        for label, workload in (
            ("scan", figure4_workload),
            ("indexed", engineered_workload),
        ):
            compiled = workload.engine.compile(PAPER_QUERIES["Q1"], Strategy.QAC)
            started = time.perf_counter()
            workload.engine.execute(compiled)
            out[label] = time.perf_counter() - started
        return out

    timings = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=1)
    assert timings["indexed"] < timings["scan"]
