"""Ablation A12: streaming event-automaton evaluation (PR 6).

The standing-query hot path used to run wire → ``parse_filler`` (full DOM
build) → store → delta scan → wrapper build, even though an eligible
query's shared prefix only ever binds a small subtree of each arriving
payload.  PR 6 compiles that prefix into an event automaton
(``compile-stream-automaton`` pass) and drives it straight from the raw
envelope text via ``XCQLEngine.feed_raw``: the payload is tokenized once,
only matched subtrees are buffered as event slices, the store keeps a
``LazyFiller`` (no DOM), and the scheduler serves binding tuples from the
automaton captures.

This ablation replays identical content-heavy envelopes (a small matched
``txn`` next to a large unmatched padding sibling) through two arms:

- **automaton**: ``feed_raw`` + a scheduler with ``stream_automata=True``;
- **baseline**: ``parse_filler`` + ``feed`` + ``stream_automata=False``
  (the PR-6 wire-ingest path).

Acceptance at scale 0.01: >= 3x median per-tick latency (ingest + poll),
byte-identical emissions, and the automaton arm's traced allocation peak
must stay flat (within 1.5x) when the unmatched padding grows 10x —
the buffered state tracks the *matched* subtree, not the fragment size.

Results are written to ``BENCH_streaming_automata.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path
from statistics import median

import pytest

from repro import Strategy, TagStructure, XCQLEngine
from repro.dom.serializer import serialize
from repro.fragments.model import parse_filler
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import QueryScheduler
from repro.temporal import XSDateTime

from .conftest import bench_scale

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_streaming_automata.json"

_STRUCTURE = TagStructure.from_xml(
    """
    <stream:structure>
      <tag type="snapshot" id="1" name="log">
        <tag type="event" id="2" name="txn">
          <tag type="snapshot" id="3" name="amount"/>
          <tag type="snapshot" id="4" name="pad">
            <tag type="snapshot" id="5" name="p"/>
          </tag>
        </tag>
      </tag>
    </stream:structure>
    """
)

N_QUERIES = 8  # one automaton group: thresholds share the //txn/amount prefix


def _sources() -> list[str]:
    # The prefix binds the *small* amount subtree inside each big txn
    # payload — the regime where event-slice captures beat DOM builds.
    return [
        f'for $a in stream("wire")//txn/amount where $a > {40 + 5 * i} '
        "return <hit>{$a/text()}</hit>"
        for i in range(N_QUERIES)
    ]


def _envelope(serial: int, pad_elements: int) -> str:
    """One raw wire envelope: a tiny matched amount + heavy unmatched padding."""
    amount = (serial * 37) % 100
    day = (serial % 27) + 1
    padding = "".join(f"<p>x{j}</p>" for j in range(pad_elements))
    return (
        f'<filler id="{1000 + serial}" tsid="2" '
        f'validTime="2003-06-{day:02d}T{serial % 24:02d}:00:00">'
        f'<txn seq="{serial}"><amount>{amount}</amount>'
        f"<pad>{padding}</pad></txn></filler>"
    )


class StreamingWorkload:
    def __init__(self, scale: float, pad_elements: int | None = None,
                 ticks: int | None = None, batch: int = 8):
        self.scale = scale
        self.pad_elements = (
            pad_elements if pad_elements is not None else max(20, int(30000 * scale))
        )
        self.ticks = ticks if ticks is not None else max(6, int(2000 * scale))
        self.batch = batch
        self.now = XSDateTime.parse("2003-12-31T00:00:00")

    def tick_envelopes(self, tick: int) -> list[str]:
        base = tick * self.batch
        return [_envelope(base + j, self.pad_elements) for j in range(self.batch)]

    def arm(self, automata: bool):
        engine = XCQLEngine(default_now=self.now)
        engine.register_stream("wire", _STRUCTURE)
        scheduler = QueryScheduler(engine, stream_automata=automata)
        queries = []
        for source in _sources():
            query = ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS)
            scheduler.add(query)
            queries.append(query)
        scheduler.poll(self.now)  # baseline full runs
        return engine, scheduler, queries


@pytest.fixture(scope="module")
def workload() -> StreamingWorkload:
    return StreamingWorkload(bench_scale())


def _normalized(queries) -> list[list[str]]:
    return [sorted(serialize(item) for item in q.last_result) for q in queries]


def test_results_agree(workload):
    small = StreamingWorkload(workload.scale, pad_elements=30, ticks=6)
    auto_engine, auto_sched, auto_queries = small.arm(automata=True)
    base_engine, base_sched, base_queries = small.arm(automata=False)
    for tick in range(small.ticks):
        envelopes = small.tick_envelopes(tick)
        auto_engine.feed_raw("wire", envelopes)
        base_engine.feed("wire", [parse_filler(raw) for raw in envelopes])
        auto_sched.poll(small.now)
        base_sched.poll(small.now)
        assert _normalized(auto_queries) == _normalized(base_queries)
    stats = auto_sched.stats()["automata"]
    assert stats["registered"] == N_QUERIES
    assert stats["runs"] > 0
    assert stats["fallbacks"] == 0


def test_automaton_speedup(benchmark, workload):
    """The headline: >= 3x per-tick wire-to-answer latency at scale 0.01.

    Also writes ``BENCH_streaming_automata.json`` at the repo root.
    """
    auto_engine, auto_sched, auto_queries = workload.arm(automata=True)
    base_engine, base_sched, base_queries = workload.arm(automata=False)

    def measure() -> dict:
        auto_times: list[float] = []
        base_times: list[float] = []
        for tick in range(workload.ticks):
            envelopes = workload.tick_envelopes(tick)
            contenders = [
                (auto_times, auto_engine, auto_sched, True),
                (base_times, base_engine, base_sched, False),
            ]
            if tick % 2:
                contenders.reverse()
            for times, engine, scheduler, raw in contenders:
                started = time.perf_counter()
                if raw:
                    engine.feed_raw("wire", envelopes)
                else:
                    engine.feed("wire", [parse_filler(e) for e in envelopes])
                scheduler.poll(workload.now)
                times.append(time.perf_counter() - started)
        return {"automaton": median(auto_times), "baseline": median(base_times)}

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert _normalized(auto_queries) == _normalized(base_queries)

    stats = auto_sched.stats()
    speedup = timings["baseline"] / timings["automaton"]
    benchmark.extra_info["per_tick_speedup"] = round(speedup, 2)
    report = {
        "ablation": "A12",
        "scale": workload.scale,
        "standing_queries": N_QUERIES,
        "ticks": workload.ticks,
        "arrivals_per_tick": workload.batch,
        "pad_elements_per_envelope": workload.pad_elements,
        "per_tick": {
            "baseline_s": timings["baseline"],
            "automaton_s": timings["automaton"],
            "speedup": round(speedup, 2),
        },
        "automata": stats["automata"],
        "host": auto_engine.automaton_host.stats(),
        "memory": _memory_profile(workload),
    }
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    assert timings["automaton"] < timings["baseline"], f"slower ({timings})"
    assert auto_sched.stats()["automata"]["fallbacks"] == 0
    if bench_scale() >= 0.01:
        assert speedup >= 3.0, f"only {speedup:.2f}x per tick ({timings})"
        ratio = report["memory"]["peak_ratio"]
        assert ratio <= 1.5, (
            f"peak grew {ratio:.2f}x for 10x larger fragments ({report['memory']})"
        )


def _traced_peak(pad_elements: int, ticks: int, workload) -> int:
    """Traced allocation peak of the automaton arm's ingest + poll loop.

    The raw envelopes are pre-built before tracing starts, so the peak
    reflects what the hot path itself allocates: tokenizer state, the
    matched-subtree event buffers, and the served binding tuples — not
    the wire text.
    """
    run = StreamingWorkload(workload.scale, pad_elements=pad_elements,
                            ticks=ticks)
    batches = [run.tick_envelopes(tick) for tick in range(run.ticks)]
    engine, scheduler, _ = run.arm(automata=True)
    tracemalloc.start()
    try:
        for envelopes in batches:
            engine.feed_raw("wire", envelopes)
            scheduler.poll(run.now)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert scheduler.stats()["automata"]["fallbacks"] == 0
    return peak


def _memory_profile(workload) -> dict:
    """Peak traced bytes at base padding vs 10x padding (same arrivals)."""
    base_pad = max(20, workload.pad_elements // 4)
    ticks = min(workload.ticks, 10)
    small_peak = _traced_peak(base_pad, ticks, workload)
    large_peak = _traced_peak(base_pad * 10, ticks, workload)
    return {
        "ticks": ticks,
        "base_pad_elements": base_pad,
        "large_pad_elements": base_pad * 10,
        "base_peak_bytes": small_peak,
        "large_peak_bytes": large_peak,
        "peak_ratio": round(large_peak / small_peak, 3) if small_peak else 0.0,
    }
