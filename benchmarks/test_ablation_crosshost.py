"""Ablation A15: the sharded engine over cross-host links (PR 9).

A13 established the sharded engine's modeled per-tick critical path —
coordinator post + merge plus the slowest shard's CPU — with mp-pipe
worker processes.  This ablation swaps the transport: the same 4-shard /
64-query dense-wake workload runs over :class:`NetLink` against a real
``run_worker`` host speaking protocol v2 (DISPATCH/POLL frames, JSON
headers, length-prefixed framing), and must not regress the critical
path that made sharding worthwhile in the first place.

Three reported quantities:

- ``modeled_s`` per arm — the A13 critical-path model, comparable
  across transports because each worker measures its own poll CPU and
  reports it in the POLL_REPLY;
- ``frames_per_dispatch`` — wire efficiency of the v2 WORKER role: one
  command, one frame, regardless of batch size (the payload rides the
  DISPATCH header, not per-entry frames);
- ``narrowing_ratio`` — the predicate-narrowed CATCHUP satellite:
  fraction of journal entries a predicate subscriber's replay skips
  server-side instead of shipping and discarding client-side.

Acceptance: net-arm emissions byte-identical to the pipe arm's per
tick; net-arm modeled critical path still beats solo and stays within a
small factor of the pipe arm's (the delta is JSON header encode/decode);
narrowing ratio > 0 with replayed + skipped covering the journal.
Results are written to ``BENCH_crosshost.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from pathlib import Path
from statistics import median

import pytest

from repro.core.optimizer import RoutingPredicate
from repro.fragments.model import Filler
from repro.fragments.persist import Journal
from repro.streams.net import StreamClient, StreamServer, Subscription
from repro.streams.sharding import ShardedEngine
from repro.streams.transport import FILLER, TAG_STRUCTURE, Message

from .conftest import bench_scale
from .test_ablation_sharding import (
    _STRUCTURE_XML,
    AMOUNT_RANGE,
    N_QUERIES,
    N_SHARDS,
    ShardedWorkload,
    _cores,
)

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_crosshost.json"


def _merge_report(section: str, payload: dict) -> None:
    """Fold one section into BENCH_crosshost.json (tests may run alone)."""
    report = {"ablation": "A15", "scale": bench_scale()}
    if _JSON_PATH.exists():
        try:
            report = json.loads(_JSON_PATH.read_text(encoding="utf-8"))
        except ValueError:
            pass
    report[section] = payload
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def _worker_entry(conn):  # child process: a real protocol-v2 worker host
    from repro.streams.net import run_worker

    run_worker(port=0, ready=conn.send)


@pytest.fixture(scope="module")
def worker_address():
    context = multiprocessing.get_context()
    parent, child = context.Pipe()
    process = context.Process(target=_worker_entry, args=(child,), daemon=True)
    process.start()
    child.close()
    if not parent.poll(30):
        process.terminate()
        pytest.fail("worker host never reported its port")
    port = parent.recv()
    parent.close()
    yield f"127.0.0.1:{port}"
    process.terminate()
    process.join(5)


@pytest.fixture(scope="module")
def workload() -> ShardedWorkload:
    return ShardedWorkload(bench_scale(), ticks=8)


def test_crosshost_critical_path(benchmark, workload, worker_address):
    """mp-pipe vs netproto at 4 shards / 64 queries: byte-identical
    emissions, no critical-path regression, one frame per command."""
    pipe_engine, pipe_queries = workload.sharded_arm(shards=N_SHARDS)
    net_engine, net_queries = workload.sharded_arm(
        shards=N_SHARDS, workers=[worker_address] * N_SHARDS
    )
    try:
        def measure() -> dict:
            pipe_engine.tick(workload.now)
            net_engine.tick(workload.now)
            pipe_times: list[float] = []
            net_times: list[float] = []
            pipe_walls: list[float] = []
            net_walls: list[float] = []
            for tick in range(workload.ticks):
                batch = workload.tick_fillers(tick)
                pipe_engine.feed("ledger", [
                    Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                    for f in batch
                ])
                net_engine.feed("ledger", batch)
                arms = ["pipe", "net"]
                if tick % 2:
                    arms.reverse()
                for arm in arms:
                    engine = pipe_engine if arm == "pipe" else net_engine
                    started = time.perf_counter()
                    emitted = engine.tick(workload.now)
                    wall = time.perf_counter() - started
                    timing = engine.last_tick_timing
                    modeled = (
                        timing["post"] + timing["merge"]
                        + max(timing["shard_cpu"].values(), default=0.0)
                    )
                    if arm == "pipe":
                        pipe_emitted = emitted
                        pipe_times.append(modeled)
                        pipe_walls.append(wall)
                    else:
                        net_emitted = emitted
                        net_times.append(modeled)
                        net_walls.append(wall)
                for pipe_q, net_q in zip(pipe_queries, net_queries):
                    assert sorted(net_emitted[net_q]) == sorted(
                        pipe_emitted[pipe_q]
                    ), pipe_q.source
            return {
                "pipe_modeled": median(pipe_times),
                "net_modeled": median(net_times),
                "pipe_wall": median(pipe_walls),
                "net_wall": median(net_walls),
            }

        timings = benchmark.pedantic(measure, rounds=1, iterations=1)
        pipe_stats = pipe_engine.stats()
        net_stats = net_engine.stats()
    finally:
        pipe_engine.close()
        net_engine.close()

    links = [shard["link"] for shard in net_stats["shards"]]
    commands = sum(l["dispatches"] + l["polls"] for l in links)
    frames = sum(l["frames_sent"] for l in links)
    frames_per_dispatch = frames / max(1, commands)
    transport_factor = timings["net_modeled"] / timings["pipe_modeled"]
    benchmark.extra_info["transport_factor"] = round(transport_factor, 2)
    benchmark.extra_info["frames_per_dispatch"] = round(frames_per_dispatch, 3)

    # Solo reference from the same workload, for the A13 regression bar.
    solo_engine, solo_sched, _ = workload.solo_arm()
    solo_sched.poll(workload.now)
    solo_times = []
    for tick in range(workload.ticks):
        solo_engine.feed("ledger", workload.tick_fillers(tick))
        started = time.perf_counter()
        solo_sched.poll(workload.now)
        solo_times.append(time.perf_counter() - started)
    solo = median(solo_times)

    _merge_report("critical_path", {
        "cores": _cores(),
        "shards": N_SHARDS,
        "standing_queries": workload.queries,
        "ticks": workload.ticks,
        "arrivals_per_tick": workload.batch,
        "per_tick": {
            "solo_s": solo,
            "pipe_modeled_s": timings["pipe_modeled"],
            "net_modeled_s": timings["net_modeled"],
            "pipe_wall_s": timings["pipe_wall"],
            "net_wall_s": timings["net_wall"],
            "transport_factor": round(transport_factor, 2),
        },
        "wire": {
            "frames_per_dispatch": round(frames_per_dispatch, 3),
            "dispatches": sum(l["dispatches"] for l in links),
            "polls": sum(l["polls"] for l in links),
            "bytes_sent": sum(l["bytes_sent"] for l in links),
            "bytes_received": sum(l["bytes_received"] for l in links),
        },
        "coordinator": {
            "pipe": {
                key: pipe_stats["coordinator"][key]
                for key in ("dispatch_wakes", "dispatch_skips", "shard_polls")
            },
            "net": {
                key: net_stats["coordinator"][key]
                for key in ("dispatch_wakes", "dispatch_skips", "shard_polls")
            },
        },
    })

    # The WORKER role pays one frame per command — batching rides inside
    # the DISPATCH header, so wire chatter does not scale with batch size.
    assert frames_per_dispatch <= 1.1, frames_per_dispatch
    # No regression of the A13 story: the critical path over the network
    # transport still beats the solo scheduler...
    assert timings["net_modeled"] < solo, (timings, solo)
    # ...and stays in the pipe arm's neighborhood.  The allowance is
    # deliberately loose for one-core CI: the JSON header encode/decode
    # both arms' workers do is time-sliced differently under load.
    assert transport_factor <= 3.0, (timings, transport_factor)


def test_catchup_narrowing_ratio(workload, tmp_path):
    """Predicate-narrowed CATCHUP over the A15 journal: the server-side
    skip covers the whole journal and actually narrows the replay."""
    threshold = AMOUNT_RANGE - AMOUNT_RANGE // 4  # top quartile matches
    predicate = RoutingPredicate(
        tuple_tag="txn",
        path=("amount",),
        attribute=None,
        text_only=False,
        op=">",
        value=float(threshold),
        numeric=True,
    )
    fillers = workload.preload_fillers()

    async def scenario() -> dict:
        journal = Journal(os.path.join(str(tmp_path), "crosshost.journal"))
        server = StreamServer(journal=journal, max_delay_ms=2.0)
        await server.start()
        await server.publish(
            Message(TAG_STRUCTURE, "ledger", _STRUCTURE_XML.strip())
        )
        for filler in fillers:
            await server.publish(Message(FILLER, "ledger", filler.to_xml()))
        got = []
        client = StreamClient(
            "127.0.0.1", server.port, on_message=got.append
        )
        await client.connect()
        await client.subscribe(
            [Subscription("ledger", tsid=2, predicate=predicate)],
            catchup=True,
        )
        ack = await asyncio.wait_for(client.catchup(after=0), 30)
        await client.close()
        await server.close()
        return {"ack": ack, "received": len(got)}

    outcome = asyncio.run(scenario())
    ack = outcome["ack"]
    replayed, skipped = ack["replayed"], ack["skipped"]
    ratio = skipped / max(1, replayed + skipped)
    # structure + every filler was considered exactly once.
    assert replayed + skipped == len(fillers) + 1
    matching = sum(
        1 for f in fillers
        if float(f.content.first("amount").string_value()) > threshold
    )
    assert replayed == matching + 1  # + the structure announcement
    assert skipped == len(fillers) - matching
    assert ratio > 0.25, ratio

    _merge_report("catchup_narrowing", {
        "journal_entries": len(fillers) + 1,
        "replayed": replayed,
        "skipped": skipped,
        "narrowing_ratio": round(ratio, 3),
        "predicate": f"amount > {threshold}",
    })
