"""Standalone Figure 4 table printer (same as the ``repro-figure4`` CLI).

Run:  python benchmarks/figure4.py [--scales 0.0,0.01,0.02] [--repeats N]
"""

import sys

from repro.cli import figure4_main

if __name__ == "__main__":
    sys.exit(figure4_main(sys.argv[1:]))
