"""Ablation A3b: dependency-aware scheduling of continuous queries.

Many standing queries over one stream, arrivals touching only one tsid:
the scheduler (paper §8 extension) re-evaluates only the affected queries.
"""

from __future__ import annotations

import pytest

from repro import Channel, SimulatedClock, Strategy, StreamClient, StreamServer, TagStructure
from repro.dom import Element, parse_document
from repro.streams.scheduler import QueryScheduler

from tests.conftest import CREDIT_TAG_STRUCTURE_XML

# Ten standing queries: only two touch transactions (tsid 5).
QUERIES = [
    ('count(stream("credit")//transaction)', Strategy.QAC_PLUS),
    ('sum(stream("credit")//transaction/amount)', Strategy.QAC_PLUS),
    ('count(stream("credit")//creditLimit)', Strategy.QAC_PLUS),
    ('stream("credit")//creditLimit#[last]', Strategy.QAC_PLUS),
    ('count(stream("credit")//status)', Strategy.QAC_PLUS),
    ('stream("credit")//status#[last]', Strategy.QAC_PLUS),
    ('count(stream("credit")//account)', Strategy.QAC_PLUS),
    ('stream("credit")//account/customer', Strategy.QAC_PLUS),
    ('count(stream("credit")//creditLimit#[1])', Strategy.QAC_PLUS),
    ('stream("credit")//account/@id', Strategy.QAC_PLUS),
]


def build(with_scheduler: bool):
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    clock = SimulatedClock("2003-10-01T00:00:00")
    channel = Channel()
    client = StreamClient(clock, scheduler=QueryScheduler() if with_scheduler else None)
    client.tune_in(channel)
    server = StreamServer("credit", structure, channel, clock)
    server.announce()
    server.publish_document(
        parse_document(
            "<creditAccounts><account id='1'>"
            "<customer>X</customer><creditLimit>100</creditLimit>"
            "</account></creditAccounts>"
        )
    )
    for source, strategy in QUERIES:
        client.register_query(source, strategy=strategy, emit="full")
    client.poll()  # baseline evaluation of everything
    return clock, server, client


def transaction(txn_id: int) -> Element:
    txn = Element("transaction", {"id": str(txn_id)})
    vendor = Element("vendor")
    vendor.add_text("V")
    txn.append(vendor)
    amount = Element("amount")
    amount.add_text("5")
    txn.append(amount)
    return txn


@pytest.mark.parametrize("scheduled", [False, True], ids=["rerun-all", "scheduled"])
def test_poll_with_many_queries(benchmark, scheduled):
    clock, server, client = build(scheduled)
    account_hole = server.hole_id(0, "account", "1")
    counter = [100]

    def cycle():
        counter[0] += 1
        server.emit_event(account_hole, transaction(counter[0]))
        clock.advance("PT1S")
        client.poll()

    benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1)
    if scheduled:
        stats = client.scheduler.stats()
        benchmark.extra_info["scheduler"] = stats
        assert stats["skips"] > 0


def test_scheduler_reduces_evaluations(benchmark):
    def measure():
        clock, server, client = build(True)
        account_hole = server.hole_id(0, "account", "1")
        for i in range(10):
            server.emit_event(account_hole, transaction(200 + i))
            clock.advance("PT1S")
            client.poll()
        return client.scheduler.stats()

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["scheduler"] = stats
    # A transaction event touches transaction (5) + status holes; the
    # account/creditLimit-only queries must have been skipped throughout.
    assert stats["skips"] > stats["evaluations"]
