"""Ablation A11: shared multi-query evaluation + predicate routing (PR 4).

The target workload is many standing queries over one stream (paper §2,
§7).  After PR 3 every non-skipped poll tick still ran each query's own
delta scan: cost O(queries x arrival batch).  PR 4 groups same-prefix
delta-safe queries so one shared scan per tick materializes the binding
tuples for every member, and routes arrivals through a per-(stream, tsid)
predicate index so a filler batch wakes only the queries whose predicate
can match.

This ablation replays one arrival sequence against two identical engines
carrying the same 64 standing queries (`where $t/amount > K` for spread
thresholds, a selective workload): one scheduler with grouping + routing
enabled, one with both disabled (the PR-3 baseline).  The acceptance bar
at scale 0.01: >= 5x median per-tick latency, and the routing index must
skip >= 50% of the wakes it probes.

Results are written to ``BENCH_shared_eval.json`` at the repo root so the
perf trajectory stays machine-readable across PRs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timedelta
from pathlib import Path
from statistics import median

import pytest

from repro import Strategy, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.dom.serializer import serialize
from repro.fragments.model import Filler
from repro.streams.continuous import ContinuousQuery
from repro.streams.scheduler import QueryScheduler
from repro.temporal import XSDateTime

from .conftest import bench_scale

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_shared_eval.json"

_STRUCTURE = TagStructure.from_xml(
    """
    <stream:structure>
      <tag type="snapshot" id="1" name="ledger">
        <tag type="event" id="2" name="txn">
          <tag type="snapshot" id="3" name="amount"/>
        </tag>
      </tag>
    </stream:structure>
    """
)

_BASE = datetime(2000, 1, 1)

N_QUERIES = 64
AMOUNT_RANGE = 128  # arriving amounts are in [0, AMOUNT_RANGE)


def _query(threshold: int) -> str:
    return (
        f'for $t in stream("ledger")//txn where $t/amount > {threshold} '
        "return <flag>{$t/amount/text()}</flag>"
    )


def _stamp(minutes: float) -> XSDateTime:
    return XSDateTime.parse(
        (_BASE + timedelta(minutes=minutes)).strftime("%Y-%m-%dT%H:%M:%S")
    )


def _txn(filler_id: int, minutes: float, amount: int) -> Filler:
    content = parse_document(
        f'<txn seq="{filler_id}"><amount>{amount}</amount></txn>'
    ).document_element
    return Filler(filler_id, 2, _stamp(minutes), content)


class SharedWorkload:
    """One event stream, 64 standing threshold queries, many small ticks.

    Thresholds are spread over 10x the arriving amount range, so most
    queries can never match an arriving batch — the regime the routing
    index exists for (selective standing alerts over a busy stream).
    """

    def __init__(self, scale: float, preload: int | None = None, ticks: int = 30,
                 queries: int = N_QUERIES):
        self.scale = scale
        self.preload = preload if preload is not None else max(100, int(10000 * scale))
        self.ticks = ticks
        self.batch = 16
        self.queries = queries
        self.now = _stamp(10_000_000)

    def sources(self) -> list[str]:
        # Selective standing alerts: thresholds start above the median
        # arriving amount and most lie beyond the amount range entirely,
        # so a typical batch concerns only a handful of queries.
        step = (AMOUNT_RANGE * 10) // self.queries
        floor = AMOUNT_RANGE // 2
        return [_query(floor + i * step) for i in range(self.queries)]

    def preload_fillers(self) -> list[Filler]:
        return [
            _txn(i + 1, i, (i * 37) % AMOUNT_RANGE) for i in range(self.preload)
        ]

    def tick_fillers(self, tick: int) -> list[Filler]:
        base_id = self.preload + 1 + tick * self.batch
        base_minute = self.preload + 10 + tick * self.batch
        return [
            _txn(base_id + j, base_minute + j,
                 (tick * 31 + j * 17) % AMOUNT_RANGE)
            for j in range(self.batch)
        ]

    def engine(self) -> XCQLEngine:
        engine = XCQLEngine(default_now=self.now)
        engine.register_stream("ledger", _STRUCTURE)
        engine.feed("ledger", self.preload_fillers())
        return engine

    def arm(self, share: bool) -> tuple[XCQLEngine, QueryScheduler, list[ContinuousQuery]]:
        engine = self.engine()
        scheduler = QueryScheduler(engine, share_groups=share, routing=share)
        queries = []
        for source in self.sources():
            query = ContinuousQuery(engine, source, strategy=Strategy.QAC_PLUS)
            scheduler.add(query)
            queries.append(query)
        return engine, scheduler, queries


@pytest.fixture(scope="module")
def workload() -> SharedWorkload:
    return SharedWorkload(bench_scale())


def test_results_agree(workload):
    """Shared+routed answers are byte-identical to the solo baseline."""
    small = SharedWorkload(workload.scale, preload=max(40, workload.preload // 4),
                           ticks=8, queries=16)
    shared_engine, shared_sched, shared_queries = small.arm(share=True)
    solo_engine, solo_sched, solo_queries = small.arm(share=False)
    shared_sched.poll(small.now)
    solo_sched.poll(small.now)
    for tick in range(small.ticks):
        batch = small.tick_fillers(tick)
        shared_engine.feed("ledger", [
            Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
            for f in batch
        ])
        solo_engine.feed("ledger", batch)
        shared_sched.poll(small.now)
        solo_sched.poll(small.now)
        for shared_q, solo_q in zip(shared_queries, solo_queries):
            assert sorted(serialize(i) for i in shared_q.last_result) == sorted(
                serialize(i) for i in solo_q.last_result
            ), shared_q.source
    stats = shared_sched.stats()
    assert stats["shared_runs"] > 0
    assert stats["routing"]["skips"] > 0
    assert any(size >= 2 for size in stats["groups"].values())


def test_group_registration(workload):
    small = SharedWorkload(workload.scale, preload=20, ticks=0, queries=8)
    _, scheduler, _ = small.arm(share=True)
    stats = scheduler.stats()
    assert list(stats["groups"].values()) == [small.queries]
    assert stats["routing"]["registered"] == small.queries


def test_shared_speedup(benchmark, workload):
    """The headline: >= 5x per-tick latency, solo vs. shared, at scale 0.01,
    with the routing index skipping >= 50% of probed wakes.

    Also writes ``BENCH_shared_eval.json`` at the repo root.
    """
    shared_engine, shared_sched, shared_queries = workload.arm(share=True)
    solo_engine, solo_sched, solo_queries = workload.arm(share=False)

    def measure() -> dict:
        shared_sched.poll(workload.now)  # baseline: full runs
        solo_sched.poll(workload.now)
        shared_times: list[float] = []
        solo_times: list[float] = []
        for tick in range(workload.ticks):
            batch = workload.tick_fillers(tick)
            shared_engine.feed("ledger", [
                Filler(f.filler_id, f.tsid, f.valid_time, f.content.copy())
                for f in batch
            ])
            solo_engine.feed("ledger", batch)
            # Alternate who goes first so drift hits both equally.
            contenders = [
                (shared_sched, shared_times), (solo_sched, solo_times)
            ]
            if tick % 2:
                contenders.reverse()
            for scheduler, times in contenders:
                started = time.perf_counter()
                scheduler.poll(workload.now)
                times.append(time.perf_counter() - started)
        return {"shared": median(shared_times), "solo": median(solo_times)}

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    for shared_q, solo_q in zip(shared_queries, solo_queries):
        assert sorted(serialize(i) for i in shared_q.last_result) == sorted(
            serialize(i) for i in solo_q.last_result
        ), shared_q.source

    stats = shared_sched.stats()
    probes = stats["routing"]["probes"]
    skips = stats["routing"]["skips"]
    skip_rate = skips / probes if probes else 0.0
    speedup = timings["solo"] / timings["shared"]
    benchmark.extra_info["per_tick_speedup"] = round(speedup, 2)
    benchmark.extra_info["routing_skip_rate"] = round(skip_rate, 3)
    report = {
        "ablation": "A11",
        "scale": workload.scale,
        "standing_queries": workload.queries,
        "preloaded_fillers": workload.preload,
        "ticks": workload.ticks,
        "arrivals_per_tick": workload.batch,
        "per_tick": {
            "solo_s": timings["solo"],
            "shared_s": timings["shared"],
            "speedup": round(speedup, 2),
        },
        "routing": {
            "probes": probes,
            "wakes": stats["routing"]["wakes"],
            "skips": skips,
            "skip_rate": round(skip_rate, 3),
        },
        "shared_prefix": stats["shared_prefix"],
        "shared_runs": stats["shared_runs"],
        "solo_delta_runs": solo_sched.stats()["delta_runs"],
    }
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    assert timings["shared"] < timings["solo"], f"sharing slower ({timings})"
    assert skip_rate >= 0.5, f"routing skipped only {skip_rate:.1%} of wakes"
    if bench_scale() >= 0.01:
        # Tiny smoke scales are dominated by fixed per-poll costs.
        assert speedup >= 5.0, f"only {speedup:.2f}x per tick ({timings})"
