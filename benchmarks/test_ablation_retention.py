"""Ablation A6: bounded retention vs. the paper's full-history model.

Extends A3's observation that evaluation cost grows with retained history:
after pruning history older than the query's window, window queries return
identical answers at a fraction of the cost.
"""

from __future__ import annotations

import pytest

from repro import Fragmenter, FragmentStore, TagStructure, XCQLEngine
from repro.dom import Element, parse_document, serialize
from repro.fragments.model import Filler
from repro.temporal import XSDateTime, XSDuration

from tests.conftest import CREDIT_TAG_STRUCTURE_XML

NOW = XSDateTime.parse("2003-12-31T00:00:00")
WINDOW_QUERY = (
    'for $a in stream("credit")//account '
    "return sum($a/transaction?[now-P7D, now]/amount)"
)


def build_engine(days_of_history: int):
    """One account accumulating 10 transactions/day for N days."""
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    engine = XCQLEngine(default_now=NOW)
    store = FragmentStore(structure, use_index=False, use_cache=False)
    engine.register_stream("credit", structure, store)
    root = Element("creditAccounts")
    root.append(Element("hole", {"id": "1", "tsid": "2"}))
    account = Element("account", {"id": "1"})
    account.append(Element("hole", {"id": "2", "tsid": "5"}))
    store.append(Filler(0, 1, XSDateTime(2003, 1, 1), root))
    store.append(Filler(1, 2, XSDateTime(2003, 1, 1), account))
    start = NOW - XSDuration.parse(f"P{days_of_history}D")
    for day in range(days_of_history):
        for hour in range(10):
            stamp = start + XSDuration.parse(f"P{day}DT{hour}H")
            txn = Element("transaction", {"id": f"{day}-{hour}"})
            amount = Element("amount")
            amount.add_text("3")
            txn.append(amount)
            vendor = Element("vendor")
            vendor.add_text("V")
            txn.append(vendor)
            store.append(Filler(2, 5, stamp, txn))
    return engine, store


@pytest.mark.parametrize("retention", ["full-history", "pruned-to-window"])
def test_window_query_cost(benchmark, retention):
    engine, store = build_engine(days_of_history=60)
    if retention == "pruned-to-window":
        store.prune_before(NOW - XSDuration.parse("P7D"))
    compiled = engine.compile(WINDOW_QUERY)

    def run():
        return engine.execute(compiled, now=NOW)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["fillers_retained"] = store.filler_count
    benchmark.extra_info["window_sum"] = result


def test_prune_preserves_window_answers_and_wins(benchmark):
    import time

    def measure():
        full_engine, _ = build_engine(days_of_history=60)
        pruned_engine, pruned_store = build_engine(days_of_history=60)
        pruned_store.prune_before(NOW - XSDuration.parse("P7D"))
        expected = full_engine.execute(WINDOW_QUERY, now=NOW)
        actual = pruned_engine.execute(WINDOW_QUERY, now=NOW)
        assert actual == expected

        def best(engine):
            times = []
            compiled = engine.compile(WINDOW_QUERY)
            for _ in range(3):
                started = time.perf_counter()
                engine.execute(compiled, now=NOW)
                times.append(time.perf_counter() - started)
            return min(times)

        return {"full": best(full_engine), "pruned": best(pruned_engine)}

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert timings["pruned"] < timings["full"]
