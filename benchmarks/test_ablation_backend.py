"""Ablation A8: closure-compiled plans vs. the tree-walking interpreter.

The paper ran its queries on Qizx/Open, a compiling engine; our baseline
evaluator is a tree-walking AST interpreter (the biggest single setup
difference, see A7).  `repro.xquery.compiler` closes part of that gap by
lowering translated queries to nested Python closures — constant folding,
pre-resolved step chains over the lazy per-element tag index, literal
comparison specialization, pre-bound FLWOR stages.

This ablation measures the compiled backend against the interpreter on
the Figure 4 cells.  The acceptance bar: >= 2x on Q1/Q2/Q5 under QaC+ on
the indexed + memoized store, where evaluation — not hole resolution —
dominates and the backend choice is actually visible.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.figure4 import _QUERY_TIME
from repro.core import Strategy
from repro.dom.nodes import Node
from repro.dom.serializer import serialize
from repro.xmark import PAPER_QUERIES

from .conftest import bench_scale

QUERIES = ("Q1", "Q2", "Q5")
BACKENDS = ("compiled", "interpreted")


def _normalized(seq: list) -> list:
    return [serialize(i) if isinstance(i, Node) else i for i in seq]


def _best_times(
    engine, plans: list, batch: int = 15, reps: int = 8
) -> list[float]:
    """Best-of-reps batched wall time per execution for each plan.

    The plans are timed in *interleaved* batches so CPU frequency drift
    and scheduler noise hit all of them equally — ratios stay stable
    even when absolute times wobble.
    """
    for plan in plans:
        engine.execute(plan, now=_QUERY_TIME)  # warm caches
    best = [float("inf")] * len(plans)
    for _ in range(reps):
        for i, plan in enumerate(plans):
            started = time.perf_counter()
            for _ in range(batch):
                engine.execute(plan, now=_QUERY_TIME)
            best[i] = min(best[i], (time.perf_counter() - started) / batch)
    return best


@pytest.mark.parametrize("strategy", (Strategy.QAC_PLUS, Strategy.QAC, Strategy.CAQ),
                         ids=lambda s: s.value)
@pytest.mark.parametrize("query_name", QUERIES)
def test_results_agree(engineered_workload, query_name, strategy):
    """Both backends must produce byte-identical Figure 4 answers."""
    engine = engineered_workload.engine
    results = []
    for backend in BACKENDS:
        compiled = engine.compile(
            PAPER_QUERIES[query_name], strategy, backend=backend, use_cache=False
        )
        results.append(_normalized(engine.execute(compiled, now=_QUERY_TIME)))
    assert results[0] == results[1]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_backend_cell(benchmark, engineered_workload, query_name, backend):
    """One pytest-benchmark cell per (query, backend) under QaC+."""
    engine = engineered_workload.engine
    compiled = engine.compile(
        PAPER_QUERIES[query_name], Strategy.QAC_PLUS, backend=backend,
        use_cache=False,
    )

    def run():
        return engine.execute(compiled, now=_QUERY_TIME)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)
    benchmark.extra_info["scale"] = engineered_workload.scale


def test_backend_speedup(benchmark, engineered_workload):
    """The headline: compiled plans >= 2x the interpreter on Q1/Q2/Q5."""

    def measure() -> dict:
        engine = engineered_workload.engine
        timings: dict[str, dict[str, float]] = {}
        for query_name in QUERIES:
            plans = [
                engine.compile(
                    PAPER_QUERIES[query_name], Strategy.QAC_PLUS,
                    backend=backend, use_cache=False,
                )
                for backend in BACKENDS
            ]
            times = _best_times(engine, plans)
            timings[query_name] = dict(zip(BACKENDS, times))
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    for query_name, row in timings.items():
        speedup = row["interpreted"] / row["compiled"]
        benchmark.extra_info[query_name] = round(speedup, 2)
        assert row["compiled"] < row["interpreted"], (
            f"{query_name}: compiled slower than interpreted ({row})"
        )
        if bench_scale() >= 0.01:
            # The acceptance bar holds from the medium document up; at
            # f = 0.0 (a few KB) fixed per-call costs dominate both.
            assert speedup >= 2.0, (
                f"{query_name}: compiled only {speedup:.2f}x faster ({row})"
            )


def test_plan_reuse_amortizes_compilation(engineered_workload):
    """Plan-cache hits make repeated execution cheaper than recompiling."""
    engine = engineered_workload.engine
    source = PAPER_QUERIES["Q5"]
    engine.clear_plan_cache()

    started = time.perf_counter()
    for _ in range(20):
        engine.execute(source, strategy=Strategy.QAC_PLUS, now=_QUERY_TIME)
    cached = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(20):
        compiled = engine.compile(
            source, Strategy.QAC_PLUS, use_cache=False
        )
        engine.execute(compiled, now=_QUERY_TIME)
    uncached = time.perf_counter() - started

    info = engine.plan_cache_info()
    assert info["hits"] >= 19
    assert cached < uncached
