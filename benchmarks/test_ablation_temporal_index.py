"""Ablation A9: the temporal endpoint index vs. the scan path (PR 2).

The paper's temporal workloads — interval projections ``e?[t1,t2]``,
version windows ``e#[v1,v2]`` and interval-comparison coincidence joins —
all scanned every filler version per evaluation after PR 1.  PR 2 adds a
per-fragment sorted endpoint index (bisected candidate windows) and a
sort-merge lowering for coincidence joins.

This ablation measures both on a version-heavy synthetic stream whose
per-version content is constant-size, so the version count — the quantity
the index attacks — is the only thing that grows with scale.  Both
engines run the compiled backend; the only difference is
``use_temporal_index`` / ``merge_joins``.  The acceptance bar: >= 3x for
the interval projection and the coincidence join at scale 0.01.

Results are written to ``BENCH_temporal_index.json`` at the repo root so
the perf trajectory stays machine-readable across PRs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timedelta
from pathlib import Path

import pytest

from repro import Strategy, TagStructure, XCQLEngine
from repro.dom import parse_document
from repro.dom.nodes import Node
from repro.dom.serializer import serialize
from repro.fragments.model import Filler
from repro.temporal import XSDateTime

from .conftest import bench_scale

_REPO_ROOT = Path(__file__).resolve().parents[1]
_JSON_PATH = _REPO_ROOT / "BENCH_temporal_index.json"

_STRUCTURE = TagStructure.from_xml(
    """
    <stream:structure>
      <tag type="snapshot" id="1" name="log">
        <tag type="temporal" id="2" name="reading"/>
        <tag type="event" id="3" name="alarm"/>
      </tag>
    </stream:structure>
    """
)

READING_FRAGMENTS = 6
_BASE = datetime(2000, 1, 1)


def _stamp(hours: float) -> str:
    return (_BASE + timedelta(hours=hours)).strftime("%Y-%m-%dT%H:%M:%S")


class TemporalWorkload:
    """Two engines over identical fillers: endpoint-indexed vs. scan."""

    def __init__(self, scale: float):
        self.scale = scale
        # 160 versions per reading fragment at the default scale 0.01.
        self.versions = max(40, int(16000 * scale))
        self.span_hours = self.versions * 3
        self.now = XSDateTime.parse(_stamp(self.span_hours + 24))
        fillers = self._fillers()
        self.indexed = self._engine(fillers, use_temporal_index=True, merge_joins=True)
        self.scan = self._engine(fillers, use_temporal_index=False, merge_joins=False)

    def _fillers(self) -> list[Filler]:
        def frag(text: str):
            return parse_document(text).document_element

        holes = "".join(
            f'<hole id="{fid}" tsid="2"/>' for fid in range(1, READING_FRAGMENTS + 1)
        )
        fillers = [
            Filler(
                0, 1, XSDateTime.parse(_stamp(0)),
                frag(f'<log>{holes}<hole id="{READING_FRAGMENTS + 1}" tsid="3"/></log>'),
            )
        ]
        for fid in range(1, READING_FRAGMENTS + 1):
            for i in range(self.versions):
                # Constant-size payload: only the version count scales.
                fillers.append(
                    Filler(
                        fid, 2,
                        XSDateTime.parse(_stamp(i * 3 + fid * 0.25)),
                        frag(f'<reading f="{fid}" v="{i}"/>'),
                    )
                )
        for j in range(int(self.versions * 0.75)):
            fillers.append(
                Filler(
                    READING_FRAGMENTS + 1, 3,
                    XSDateTime.parse(_stamp(j * 4 + 1)),
                    frag(f'<alarm n="{j}"/>'),
                )
            )
        return fillers

    def _engine(self, fillers, **kwargs) -> XCQLEngine:
        engine = XCQLEngine(default_now=self.now, **kwargs)
        engine.register_stream("sensor", _STRUCTURE)
        engine.feed("sensor", list(fillers))
        return engine

    @property
    def queries(self) -> dict[str, str]:
        mid = self.span_hours // 2
        return {
            # Narrow window in the middle of the history, projected on the
            # stream *before* navigating: the answer is a handful of
            # versions regardless of scale — exactly the case hole-window
            # bisection converts from O(versions) to O(log versions + k).
            "interval_projection": (
                f'stream("sensor")?[{_stamp(mid)}, {_stamp(mid + 12)}]//reading'
            ),
            "version_projection": 'stream("sensor")//reading#[5, 8]',
            # Full-history coincidence join: readings x alarms, lowered to
            # sort-merge on the indexed engine, nested loops on the scan one.
            "coincidence_join": (
                f'for $r in stream("sensor")//reading?[{_stamp(0)}, {_stamp(self.span_hours)}] '
                f'for $a in stream("sensor")//alarm?[{_stamp(0)}, {_stamp(self.span_hours)}] '
                "where $r icontains $a "
                'return <hit f="{$r/@f}" v="{$r/@v}" n="{$a/@n}"/>'
            ),
        }


@pytest.fixture(scope="module")
def workload() -> TemporalWorkload:
    return TemporalWorkload(bench_scale())


def _normalized(seq: list) -> list:
    return [serialize(i) if isinstance(i, Node) else i for i in seq]


def _best_times(runs: list, batch: int, reps: int) -> list[float]:
    """Best-of-reps batched wall time for each zero-arg callable.

    Interleaved batches so CPU frequency drift and scheduler noise hit
    every contender equally — the ratios stay stable even when absolute
    times wobble.
    """
    for run in runs:
        run()  # warm plan caches, wrapper caches and endpoint indexes
    best = [float("inf")] * len(runs)
    for _ in range(reps):
        for i, run in enumerate(runs):
            started = time.perf_counter()
            for _ in range(batch):
                run()
            best[i] = min(best[i], (time.perf_counter() - started) / batch)
    return best


@pytest.mark.parametrize("name", ["interval_projection", "version_projection", "coincidence_join"])
def test_results_agree(workload, name):
    """Indexed, scan and interpreted paths are byte-identical."""
    query = workload.queries[name]
    indexed = _normalized(workload.indexed.execute(query))
    scan = _normalized(workload.scan.execute(query))
    interpreted = _normalized(workload.indexed.execute(query, backend="interpreted"))
    assert indexed == scan == interpreted
    assert indexed  # never vacuous


def test_fast_paths_engage(workload):
    hook = workload.indexed.temporal_index
    hook.reset()
    workload.indexed.execute(workload.queries["interval_projection"])
    assert hook.hits > 0
    compiled = workload.indexed.compile(workload.queries["coincidence_join"])
    assert compiled.merge_joins == 1
    assert workload.scan.compile(workload.queries["coincidence_join"]).merge_joins == 0


@pytest.mark.parametrize("mode", ["indexed", "scan"])
@pytest.mark.parametrize("name", ["interval_projection", "coincidence_join"])
def test_temporal_index_cell(benchmark, workload, name, mode):
    """One pytest-benchmark cell per (query, mode)."""
    engine = getattr(workload, mode)
    query = workload.queries[name]
    compiled = engine.compile(query)

    def run():
        return engine.execute(compiled)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)
    benchmark.extra_info["versions_per_fragment"] = workload.versions


def test_temporal_index_speedup(benchmark, workload):
    """The headline: >= 3x on interval projection and the coincidence join.

    Also writes ``BENCH_temporal_index.json`` at the repo root.
    """

    def measure() -> dict:
        timings: dict[str, dict[str, float]] = {}
        for name, query in workload.queries.items():
            runs = [
                lambda e=workload.indexed: e.execute(query),
                lambda e=workload.scan: e.execute(query),
            ]
            batch, reps = (3, 4) if name == "coincidence_join" else (10, 6)
            indexed_t, scan_t = _best_times(runs, batch=batch, reps=reps)
            timings[name] = {"indexed": indexed_t, "scan": scan_t}
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    report = {
        "ablation": "A9",
        "scale": workload.scale,
        "versions_per_fragment": workload.versions,
        "reading_fragments": READING_FRAGMENTS,
        "queries": {},
    }
    for name, row in timings.items():
        speedup = row["scan"] / row["indexed"]
        benchmark.extra_info[name] = round(speedup, 2)
        report["queries"][name] = {
            "indexed_s": row["indexed"],
            "scan_s": row["scan"],
            "speedup": round(speedup, 2),
        }
    _JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name in ("interval_projection", "coincidence_join"):
        row = timings[name]
        assert row["indexed"] < row["scan"], (
            f"{name}: indexed slower than scan ({row})"
        )
        if bench_scale() >= 0.01:
            speedup = row["scan"] / row["indexed"]
            # The bar holds once the version count dominates; tiny smoke
            # scales are dominated by fixed per-call costs.
            assert speedup >= 3.0, f"{name}: only {speedup:.2f}x ({row})"
