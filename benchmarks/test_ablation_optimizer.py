"""Ablation A4: the §8 get_fillers hoisting rewrite.

Measures the paper's Query 1 (three hole crossings of the same account
fragment per tuple) with and without the let-hoisting rewrite, on a store
in paper-faithful scan mode where repeated ``get_fillers`` calls are
expensive.
"""

from __future__ import annotations

import pytest

from repro import Fragmenter, FragmentStore, TagStructure, XCQLEngine
from repro.core import Strategy
from repro.dom import parse_document
from repro.temporal import XSDateTime

from tests.conftest import CREDIT_TAG_STRUCTURE_XML

NOW = XSDateTime.parse("2003-12-01T00:00:00")

QUERY_1 = """
for $a in stream("credit")//account
where sum($a/transaction?[2003-01-01,2003-12-01][status = "charged"]/amount) >=
      $a/creditLimit?[now]
return <account id="{$a/@id}">{ $a/customer, $a/creditLimit }</account>
"""


@pytest.fixture(scope="module")
def scan_engine():
    structure = TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML)
    engine = XCQLEngine(default_now=NOW)
    store = FragmentStore(structure, use_index=False, use_cache=False)
    engine.register_stream("credit", structure, store)
    parts = ["<creditAccounts>"]
    for a in range(40):
        parts.append(f'<account id="{a}"><customer>C{a}</customer>')
        parts.append(f"<creditLimit>{1000 + a}</creditLimit>")
        for t in range(6):
            stamp = f"2003-{(t % 9) + 1:02d}-11T09:00:00"
            parts.append(
                f'<transaction id="{a}-{t}" vtFrom="{stamp}" vtTo="{stamp}">'
                f"<vendor>V</vendor><amount>{100 + t}</amount>"
                f'<status vtFrom="{stamp}" vtTo="now">charged</status></transaction>'
            )
        parts.append("</account>")
    parts.append("</creditAccounts>")
    engine.feed(
        "credit",
        Fragmenter(structure).fragment_temporal_view(
            parse_document("".join(parts)), XSDateTime(2003, 1, 1)
        ),
    )
    return engine


@pytest.mark.parametrize("optimized", [False, True], ids=["plain", "hoisted"])
def test_query1_hoisting(benchmark, scan_engine, optimized):
    compiled = scan_engine.compile(QUERY_1, Strategy.QAC, optimize=optimized)

    def run():
        return scan_engine.execute(compiled, now=NOW)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["result_count"] = len(result)
    benchmark.extra_info["hoisted_calls"] = compiled.hoisted_calls


def test_hoisting_speeds_up_scan_mode(benchmark, scan_engine):
    import time

    def measure():
        timings = {}
        for label, optimize in (("plain", False), ("hoisted", True)):
            compiled = scan_engine.compile(QUERY_1, Strategy.QAC, optimize=optimize)
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                scan_engine.execute(compiled, now=NOW)
                best = min(best, time.perf_counter() - started)
            timings[label] = best
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert timings["hoisted"] < timings["plain"]
