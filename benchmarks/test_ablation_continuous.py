"""Ablation A3: continuous re-evaluation cost vs. arrival batch size.

The paper defers operator scheduling to future work (§8); its model simply
re-evaluates standing queries over the fragment state.  This ablation
measures the cost of one re-evaluation as a function of how many events
arrive per poll — i.e., the amortized per-event cost of polling frequently
(batch=1) vs. rarely (batch=32).
"""

from __future__ import annotations

import pytest

from repro import Channel, SimulatedClock, Strategy, StreamClient, StreamServer, TagStructure
from repro.dom import Element, parse_document

from tests.conftest import CREDIT_TAG_STRUCTURE_XML

QUERY = (
    'for $a in stream("credit")//account '
    "where sum($a/transaction?[now-PT1H,now]/amount) >= 10000 "
    'return <hot id="{$a/@id}"/>'
)


def build_rig():
    clock = SimulatedClock("2003-10-01T00:00:00")
    channel = Channel()
    client = StreamClient(clock)
    client.tune_in(channel)
    server = StreamServer(
        "credit", TagStructure.from_xml(CREDIT_TAG_STRUCTURE_XML), channel, clock
    )
    server.announce()
    server.publish_document(
        parse_document(
            "<creditAccounts><account id='1'>"
            "<customer>X</customer><creditLimit>100</creditLimit>"
            "</account></creditAccounts>"
        )
    )
    account_hole = server.hole_id(0, "account", "1")
    query = client.register_query(QUERY, strategy=Strategy.QAC)
    return clock, server, client, query, account_hole


def transaction(txn_id: int) -> Element:
    txn = Element("transaction", {"id": str(txn_id)})
    vendor = Element("vendor")
    vendor.add_text("V")
    txn.append(vendor)
    amount = Element("amount")
    amount.add_text("3")
    txn.append(amount)
    return txn


@pytest.mark.parametrize("batch", [1, 8, 32])
def test_poll_cost_by_batch_size(benchmark, batch):
    clock, server, client, query, account_hole = build_rig()
    counter = [0]

    def one_cycle():
        for _ in range(batch):
            counter[0] += 1
            server.emit_event(account_hole, transaction(counter[0]))
            clock.advance("PT1S")
        client.poll()

    benchmark.pedantic(one_cycle, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["events_per_poll"] = batch
    benchmark.extra_info["total_events"] = counter[0]


def test_evaluation_cost_grows_with_history(benchmark):
    """Re-evaluation touches the whole retained history — the cost of the
    paper's no-expiry store grows with stream length."""
    import time

    def measure() -> dict[int, float]:
        clock, server, client, query, account_hole = build_rig()
        timings: dict[int, float] = {}
        counter = 0
        for checkpoint in (50, 100, 200):
            while counter < checkpoint:
                counter += 1
                server.emit_event(account_hole, transaction(counter))
                clock.advance("PT1S")
            started = time.perf_counter()
            query.evaluate(clock.now())
            timings[checkpoint] = time.perf_counter() - started
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["timings"] = {k: round(v, 4) for k, v in timings.items()}
    assert timings[200] > timings[50]
